"""Command-line runner: ``python -m repro.workloads <id> [...]``.

Runs registered workload pipelines one-off on a benchmark-suite proxy (or
a corpus scenario) and prints the per-stage cost table — the quick way to
inspect a pipeline.  ``--list`` prints the registered workload ids;
unknown ids raise the same helpful error as the experiment registry.

Compiler-era switches:

* ``--engine {scalar,vectorized,streaming}`` picks the simulation backend
  variant (``SpArchConfig(engine=...)``);
* ``--via {compiled,build}`` selects the declarative spec executor or the
  legacy hand-written build program (byte-identical where both exist);
* ``--fuse`` collapses adjacent host ops into fused stages;
* ``--json OUT`` writes every run's canonical result payload (the golden
  byte-parity encoding, host wall-times included) to one merged file;
* ``--verify-compiled`` exits non-zero if any registered workload lacks a
  compiled spec — the CI smoke job's first gate.

The full SpArch-vs-baselines comparison sweep lives in
``python -m repro.experiments workloads``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.runner import ExperimentRunner
from repro.matrices.suite import load_benchmark
from repro.utils.reporting import Table
from repro.workloads.compiler import result_payload
from repro.workloads.registry import (
    WORKLOADS,
    get_workload,
    list_workloads,
    run_workload,
)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Run declarative SpGEMM workload pipelines on SpArch.",
    )
    parser.add_argument("workloads", nargs="*",
                        help="workload ids to run (e.g. mcl khop), or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list the registered workloads and exit")
    parser.add_argument("--verify-compiled", action="store_true",
                        help="check every registered workload has a compiled "
                             "spec and exit (non-zero on a gap)")
    parser.add_argument("--matrix", default="ca-CondMat",
                        help="benchmark-suite matrix to run on")
    parser.add_argument("--scenario", default=None, metavar="CORPUS/NAME",
                        help="run on a corpus scenario (e.g. "
                             "'smoke/wiki-Vote@120') instead of --matrix")
    parser.add_argument("--max-rows", type=int, default=600,
                        help="proxy dimension cap for the matrix")
    parser.add_argument("--engine", default=None,
                        choices=["scalar", "vectorized", "streaming"],
                        help="simulation backend variant "
                             "(SpArchConfig(engine=...))")
    parser.add_argument("--via", default="compiled",
                        choices=["compiled", "build"],
                        help="run the compiled declarative spec (default) or "
                             "the legacy hand-written build program")
    parser.add_argument("--fuse", action="store_true",
                        help="fuse adjacent host ops into single stages "
                             "(compiled path only)")
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write the runs' canonical result payloads "
                             "(host wall-times included) to OUT")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="memoise per-stage simulations on disk under DIR")
    return parser


def _print_listing() -> None:
    for workload_id in list_workloads():
        spec = get_workload(workload_id)
        print(f"{workload_id:>10}  {spec.title}")


def _verify_compiled() -> int:
    """Exit code 0 iff every registered workload carries a compiled spec."""
    missing = [spec.workload_id for spec in WORKLOADS
               if spec.compiled is None]
    if missing:
        print("workloads without a compiled spec: " + ", ".join(missing),
              file=sys.stderr)
        return 1
    print(f"all {len(WORKLOADS)} registered workloads carry a compiled spec")
    return 0


def _load_matrix(args: argparse.Namespace):
    """Resolve ``--scenario corpus/name`` or ``--matrix`` to (label, CSR)."""
    if args.scenario is not None:
        from repro.corpus.registry import resolve_scenario

        scenario = resolve_scenario(args.scenario)
        return args.scenario, scenario.build()
    return args.matrix, load_benchmark(args.matrix, max_rows=args.max_rows)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.verify_compiled:
        return _verify_compiled()
    if args.list or not args.workloads:
        _print_listing()
        return 0

    requested = args.workloads
    if requested == ["all"]:
        requested = list_workloads()

    label, matrix = _load_matrix(args)
    config = None
    if args.engine is not None:
        from repro.core.config import SpArchConfig

        config = SpArchConfig(engine=args.engine)
    runner = ExperimentRunner(cache_dir=args.cache_dir)
    payloads = []
    for workload_id in requested:
        spec = get_workload(workload_id)
        result = run_workload(workload_id, matrix, runner=runner,
                              config=config, via=args.via, fuse=args.fuse)
        table = Table(
            title=f"{spec.title} — {label} ({matrix.shape[0]} rows), "
                  f"backend {result.backend}",
            columns=["stage", "kind", "inputs", "nnz", "cycles",
                     "runtime [s]", "host [s]", "DRAM [B]", "energy [J]"],
        )
        for stage in result.stages:
            table.add_row(stage.name, stage.kind, "+".join(stage.inputs),
                          stage.output_nnz, stage.cycles,
                          stage.runtime_seconds, stage.host_seconds,
                          stage.dram_bytes, stage.energy_joules)
        table.add_row("TOTAL", "", "", "", result.total_cycles,
                      result.total_runtime_seconds,
                      result.total_host_seconds, result.total_dram_bytes,
                      result.total_energy_joules)
        print(table.render())
        if result.annotations:
            notes = ", ".join(f"{key}={value:g}"
                              for key, value in result.annotations.items())
            print(f"annotations: {notes}")
        print()
        if args.json is not None:
            payloads.append(result_payload(result, host_seconds=True))
    hits, misses = runner.cache_hits, runner.cache_misses
    if hits or misses:
        print(f"[runner] {misses} stage simulations computed, "
              f"{hits} reused from cache")
    if args.json is not None:
        merged = {
            "matrix": label,
            "engine": args.engine or "vectorized",
            "via": args.via,
            "fused": args.fuse,
            "results": payloads,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[json] wrote {len(payloads)} result payload(s) to "
              f"{args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
