"""Declarative multi-stage SpGEMM workload pipelines.

The paper motivates SpArch with end-to-end applications — triangle
counting, Markov clustering — that chain many SpGEMMs.  This subpackage is
the subsystem those applications (and every future scenario sweep) plug
into:

* :mod:`repro.workloads.pipeline` — the stage DAG: SpGEMM stages dispatched
  to the SpArch simulator or any baseline, host stages for element-wise
  work, per-stage cost records, and a define-by-run builder.
* :mod:`repro.workloads.ops` — the host-op vocabulary (mask, normalise,
  inflate, prune, transpose, aggregation, ...), extensible via
  :func:`~repro.workloads.ops.register_host_op`.
* :mod:`repro.workloads.library` — the five registered pipelines:
  triangles, mcl, khop, galerkin, cosine.
* :mod:`repro.workloads.registry` — frozen specs, id lookup and
  :func:`~repro.workloads.registry.run_workload`.

Run ``python -m repro.workloads --list`` to discover the registered
workloads, and ``python -m repro.experiments workloads`` for the end-to-end
SpArch-vs-baselines comparison sweep.
"""

from repro.workloads.ops import (
    HOST_OPS,
    get_host_op,
    register_host_op,
    triangles_from_masked,
)
from repro.workloads.pipeline import (
    SPGEMM_KIND,
    BaselineExecutor,
    EngineExecutor,
    PipelineBuilder,
    SpArchExecutor,
    StageExecutor,
    StageResult,
    WorkloadResult,
)
from repro.workloads.registry import (
    WORKLOADS,
    WorkloadSpec,
    get_workload,
    list_workloads,
    run_workload,
)

__all__ = [
    "SPGEMM_KIND",
    "HOST_OPS",
    "BaselineExecutor",
    "EngineExecutor",
    "PipelineBuilder",
    "SpArchExecutor",
    "StageExecutor",
    "StageResult",
    "WorkloadResult",
    "WorkloadSpec",
    "WORKLOADS",
    "get_host_op",
    "get_workload",
    "list_workloads",
    "register_host_op",
    "run_workload",
    "triangles_from_masked",
]
