"""Declarative multi-stage SpGEMM workload pipelines.

The paper motivates SpArch with end-to-end applications — triangle
counting, Markov clustering — that chain many SpGEMMs.  This subpackage is
the subsystem those applications (and every future scenario sweep) plug
into:

* :mod:`repro.workloads.pipeline` — the stage DAG: SpGEMM stages dispatched
  to the SpArch simulator or any baseline, host stages for element-wise
  work, per-stage cost records, and a define-by-run builder.
* :mod:`repro.workloads.ops` — the host-op vocabulary (mask, normalise,
  inflate, prune, transpose, aggregation, ...), extensible via
  :func:`~repro.workloads.ops.register_host_op`.
* :mod:`repro.workloads.compiler` — the workload compiler: declarative
  graph specs (JSON/YAML stage graphs or the tiny expression language)
  parsed into a typed IR, shape/sparsity-checked with stage-named
  diagnostics, scheduled deterministically, optionally host-op-fused, and
  lowered onto the same pipeline builder.
* :mod:`repro.workloads.graphs` — every registered workload's compiled
  spec (the original five re-expressed, plus pagerank, gnn_sample,
  amg_vcycle, tri_enum and serve_mix).
* :mod:`repro.workloads.library` — the original five hand-written build
  programs, kept as the compiled specs' byte-parity reference.
* :mod:`repro.workloads.probes` — annotation and loop-stop probes
  compiled specs record workload-level scalars with.
* :mod:`repro.workloads.registry` — frozen specs, id lookup and
  :func:`~repro.workloads.registry.run_workload`.

Run ``python -m repro.workloads --list`` to discover the registered
workloads, and ``python -m repro.experiments workloads`` for the end-to-end
SpArch-vs-baselines comparison sweep.
"""

from repro.workloads.compiler import (
    CompiledWorkload,
    SpecError,
    compile_expression,
    compile_graph,
    compile_workload,
    load_spec,
)
from repro.workloads.graphs import compiled_workload
from repro.workloads.ops import (
    HOST_OPS,
    apply_host_op,
    get_host_op,
    register_host_op,
    triangles_from_masked,
)
from repro.workloads.pipeline import (
    SPGEMM_KIND,
    BaselineExecutor,
    EngineExecutor,
    PipelineBuilder,
    SpArchExecutor,
    StageExecutor,
    StageResult,
    WorkloadResult,
)
from repro.workloads.registry import (
    WORKLOADS,
    WorkloadSpec,
    get_workload,
    list_workloads,
    run_workload,
)

__all__ = [
    "SPGEMM_KIND",
    "HOST_OPS",
    "BaselineExecutor",
    "CompiledWorkload",
    "EngineExecutor",
    "PipelineBuilder",
    "SpArchExecutor",
    "SpecError",
    "StageExecutor",
    "StageResult",
    "WorkloadResult",
    "WorkloadSpec",
    "WORKLOADS",
    "apply_host_op",
    "compile_expression",
    "compile_graph",
    "compile_workload",
    "compiled_workload",
    "get_host_op",
    "get_workload",
    "list_workloads",
    "load_spec",
    "register_host_op",
    "run_workload",
    "triangles_from_masked",
]
