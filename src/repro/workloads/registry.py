"""Registry mapping workload ids to their compiled specs and build programs.

Mirrors :mod:`repro.experiments.registry`: a tuple of frozen specs, id
lookup with a helpful unknown-id error, and one entry point —
:func:`run_workload` — that wires a workload to a backend and returns its
:class:`~repro.workloads.pipeline.WorkloadResult`.

Every registered workload carries a compiled declarative spec
(:mod:`repro.workloads.graphs`); the five original workloads additionally
keep their hand-written build programs (:mod:`repro.workloads.library`) as
the byte-parity reference.  Both forms lower onto the same
:class:`~repro.workloads.pipeline.PipelineBuilder`, so ``via="compiled"``
(the default) and ``via="build"`` produce byte-identical results for the
legacy five — ``tests/workloads/test_compiler_parity.py`` pins it.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.baselines.base import SpGEMMBaseline
from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.formats.csr import CSRMatrix

if TYPE_CHECKING:  # annotation only — see repro.workloads.pipeline
    from repro.experiments.runner import ExperimentRunner
from repro.workloads import library
from repro.workloads.compiler import CompiledWorkload
from repro.workloads.graphs import compiled_workload
from repro.workloads.pipeline import (
    BaselineExecutor,
    EngineExecutor,
    PipelineBuilder,
    SpArchExecutor,
    StageExecutor,
    WorkloadResult,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload.

    Attributes:
        workload_id: short id used on the command line ("mcl", "khop").
        title: human-readable description of the pipeline.
        description: what the workload computes and which stages it runs.
        compiled: the workload's compiled declarative spec (every
            registered workload has one — the CLI's ``--verify-compiled``
            and the CI smoke job enforce it).
        build: optional hand-written pipeline build program (see
            :mod:`repro.workloads.library`); kept for the five original
            workloads as the byte-parity reference, ``None`` for
            workloads that exist only as specs.
        defaults: declarative default parameters of the spec, overridable
            per run (``run_workload(..., **params)``).
    """

    workload_id: str
    title: str
    description: str
    compiled: CompiledWorkload
    build: Callable[..., str] | None = field(default=None, compare=False)
    defaults: tuple[tuple[str, object], ...] = ()

    def params(self, overrides: dict | None = None) -> dict:
        """Merge the spec's defaults with per-run ``overrides``."""
        merged = dict(self.defaults)
        merged.update(overrides or {})
        return merged


#: Every workload, in presentation order (the original five first).
WORKLOADS: tuple[WorkloadSpec, ...] = (
    WorkloadSpec(
        "triangles",
        "Triangle counting ((A·A) ⊙ A)",
        "Square the adjacency on the SpGEMM backend, mask by the adjacency, "
        "and count each triangle exactly (one SpGEMM + one host mask).",
        compiled_workload("triangles"),
        build=library.build_triangles,
    ),
    WorkloadSpec(
        "mcl",
        "Markov clustering (expansion / inflation)",
        "Alternate SpGEMM expansion with host inflation, pruning and "
        "column normalisation until the chaos measure converges.",
        compiled_workload("mcl"),
        build=library.build_mcl,
        defaults=(("max_iterations", 30),),
    ),
    WorkloadSpec(
        "khop",
        "k-hop path counting (A^k chain)",
        "Chain k−1 SpGEMMs to count the length-k walks between every "
        "node pair of a simple graph.",
        compiled_workload("khop"),
        build=library.build_khop,
        defaults=(("k", 3),),
    ),
    WorkloadSpec(
        "galerkin",
        "Galerkin triple product R·A·P (multigrid coarsening)",
        "Aggregate nodes into a prolongator P, then compute the coarse "
        "operator Pᵀ·A·P as two chained SpGEMMs.",
        compiled_workload("galerkin"),
        build=library.build_galerkin,
        defaults=(("group_size", 4),),
    ),
    WorkloadSpec(
        "cosine",
        "Cosine-similarity self-join (Â·Âᵀ, thresholded)",
        "L2-normalise rows, multiply by the transpose on the SpGEMM "
        "backend, and keep pairs above the similarity threshold.",
        compiled_workload("cosine"),
        build=library.build_cosine,
        defaults=(("threshold", 0.2),),
    ),
    WorkloadSpec(
        "pagerank",
        "PageRank power iteration (α·M·r + (1−α)/n)",
        "Column-normalise the adjacency, then iterate damped SpGEMM "
        "spreads of the rank column until the update falls below "
        "tolerance.",
        compiled_workload("pagerank"),
        defaults=(("max_iterations", 50),),
    ),
    WorkloadSpec(
        "gnn_sample",
        "GNN neighbourhood sampling (fanout cap + layer propagation)",
        "Cap every node's neighbourhood deterministically, then chain "
        "one propagation SpGEMM per layer over the sampled adjacency.",
        compiled_workload("gnn_sample"),
        defaults=(("fanout", 3), ("layers", 2)),
    ),
    WorkloadSpec(
        "amg_vcycle",
        "AMG V-cycle setup (repeated Galerkin coarsening)",
        "Coarsen the operator level by level — aggregate, transpose, "
        "A·P, R·AP — until it is small enough or the level budget runs "
        "out.",
        compiled_workload("amg_vcycle"),
        defaults=(("max_levels", 3),),
    ),
    WorkloadSpec(
        "tri_enum",
        "Masked triangle enumeration ((L·L) ⊙ L)",
        "Strict lower triangle of the simple graph, squared on the "
        "backend and masked by itself — every stored entry lists the "
        "triangles through one edge.",
        compiled_workload("tri_enum"),
    ),
    WorkloadSpec(
        "serve_mix",
        "Batched small-SpGEMM serving mix (block partition)",
        "Slice the operand into diagonal blocks, run one small "
        "self-product per block, and gather the results block-diagonally "
        "— the many-small-multiplications regime of a serving tier.",
        compiled_workload("serve_mix"),
        defaults=(("batch", 4),),
    ),
)

_BY_ID = {spec.workload_id: spec for spec in WORKLOADS}


def list_workloads() -> list[str]:
    """Return the registered workload ids in presentation order."""
    return [spec.workload_id for spec in WORKLOADS]


def get_workload(workload_id: str) -> WorkloadSpec:
    """Look up one workload by id; raises ``KeyError`` with suggestions."""
    try:
        return _BY_ID[workload_id]
    except KeyError:
        raise KeyError(
            f"unknown workload {workload_id!r}; known ids: "
            f"{', '.join(list_workloads())}"
        ) from None


def run_workload(workload_id: str, matrix: CSRMatrix, *,
                 executor: StageExecutor | str | None = None,
                 baseline: SpGEMMBaseline | None = None,
                 engine: SpArch | None = None,
                 runner: ExperimentRunner | None = None,
                 config: SpArchConfig | None = None,
                 via: str = "compiled",
                 fuse: bool = False,
                 **params) -> WorkloadResult:
    """Run one registered workload on ``matrix`` under a SpGEMM backend.

    The backend is chosen from the keyword arguments, most specific first:
    an explicit ``executor`` (a :class:`StageExecutor` instance, or an
    engine-registry name like ``"mkl"`` dispatched through
    :class:`EngineExecutor`); a ``baseline`` (memoised through ``runner``
    when one is given); otherwise SpArch — memoised through ``runner`` when
    one is given, else a direct ``engine`` (fresh by default).

    Args:
        workload_id: one of :func:`list_workloads`.
        matrix: the workload's input matrix (pipeline value ``"A"``).
        executor: fully custom stage executor, or an engine registry name.
        baseline: run the SpGEMM stages on this comparison baseline.
        engine: explicit SpArch instance (direct execution).
        runner: experiment runner for per-stage memoisation.
        config: SpArch configuration (Table I by default).
        via: ``"compiled"`` (default) runs the declarative spec through
            the compiler's executor; ``"build"`` runs the hand-written
            build program (legacy workloads only).  The two are
            byte-identical for every workload that has both.
        fuse: collapse adjacent host ops into fused stages (compiled path
            only; identical functional output, fewer host stage records).
        **params: workload parameters, overriding the spec's defaults.

    Returns:
        The pipeline's :class:`WorkloadResult`, output matrix included.
    """
    spec = get_workload(workload_id)
    if via not in ("compiled", "build"):
        raise ValueError(f"via must be 'compiled' or 'build', got {via!r}")
    if via == "build" and spec.build is None:
        raise ValueError(
            f"workload {workload_id!r} has no hand-written build program; "
            "it exists only as a compiled spec (use via='compiled')")
    if fuse and via == "build":
        raise ValueError("fuse=True applies to the compiled path only")
    if isinstance(executor, str):
        if baseline is not None or engine is not None:
            raise ValueError(
                "pass either an executor name or baseline=/engine=, not both")
        from repro.engines.registry import create_engine, get_engine_entry

        if (config is not None
                and get_engine_entry(executor).kind != "simulation"):
            raise ValueError(
                f"config= applies to simulation engines only, not "
                f"{executor!r}")
        kwargs = {"config": config} if config is not None else {}
        executor = EngineExecutor(create_engine(executor, **kwargs),
                                  runner=runner)
    elif executor is None:
        if baseline is not None:
            if engine is not None:
                raise ValueError("pass either baseline= or engine=, not both")
            executor = BaselineExecutor(baseline, runner=runner)
        elif runner is not None:
            if engine is not None:
                raise ValueError("pass either engine= or runner=, not both")
            executor = SpArchExecutor(runner=runner, config=config)
        else:
            executor = SpArchExecutor(engine=engine, config=config)
    first_input = spec.compiled.graph.inputs[0].name
    pipeline = PipelineBuilder(executor, inputs={first_input: matrix})
    if via == "build":
        output = spec.build(pipeline, **spec.params(params))
    else:
        output = spec.compiled.run(pipeline, params=spec.params(params),
                                   fuse=fuse)
    return pipeline.result(spec.workload_id, output)
