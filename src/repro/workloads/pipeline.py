"""Declarative multi-stage SpGEMM pipelines.

A *workload* is a DAG of named stages over sparse matrices.  Stages come in
two kinds:

* **SpGEMM stages** — sparse matrix-matrix products, dispatched to a
  :class:`StageExecutor` built on the engine registry
  (:mod:`repro.engines`): any registered engine — the SpArch simulator or
  any comparison baseline — addressed by name or instance, either executed
  directly or with its :class:`~repro.metrics.report.CostReport` memoised
  through the :class:`~repro.experiments.runner.ExperimentRunner`
  fingerprint cache.  Each stage records the engine's full cost report —
  cycles, runtime, DRAM traffic, energy — in a :class:`StageResult`.
* **Host stages** — element-wise / normalise / prune / mask operations from
  :mod:`repro.workloads.ops`, executed on the host and charged zero
  accelerator cost.

Pipelines are *define-by-run*: a workload's build program receives a
:class:`PipelineBuilder`, declares stages imperatively — data-dependent
control flow such as MCL's convergence loop is ordinary Python — and each
stage executes as it is declared while the DAG (names, kinds, dependencies)
is recorded into the resulting :class:`WorkloadResult`.

Functional semantics: when an executor returns its own result matrix
(direct SpArch or baseline execution) the pipeline threads that matrix to
downstream stages, so applications ported onto the framework reproduce
their pre-framework outputs bit for bit.  When the executor memoises
statistics through the experiment runner (which caches
:class:`~repro.core.stats.SimulationStats` only), the functional product
comes from one canonical exact host path instead — every backend then
traverses identical intermediate matrices, which is what makes end-to-end
backend comparisons apples-to-apples and cached re-runs incremental.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import scipy.sparse as sp

from repro.analysis.energy import EnergyModel
from repro.baselines.base import BaselineSummary, SpGEMMBaseline
from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.engines.adapters import BaselineEngineAdapter
from repro.engines.base import Engine
from repro.engines.registry import resolve_engine
from repro.engines.sparch import SpArchEngine
from repro.formats.convert import from_scipy, to_scipy
from repro.formats.csr import CSRMatrix
from repro.metrics.report import CostReport
from repro.workloads.ops import apply_host_op

if TYPE_CHECKING:  # the runner is only an annotation here; importing it at
    # runtime would close an import cycle (experiments.registry imports the
    # workloads experiment, which imports this module)
    from repro.experiments.runner import ExperimentRunner

#: Stage kind of SpGEMM stages (host stages use their op name as the kind).
SPGEMM_KIND = "spgemm"


@dataclass
class StageResult:
    """Record of one executed pipeline stage.

    Attributes:
        name: unique stage name within the pipeline.
        kind: ``"spgemm"`` or the host-op name.
        inputs: names of the values (inputs or earlier stages) consumed.
        output_shape: shape of the stage's result matrix.
        output_nnz: stored nonzeros of the stage's result.
        cycles: simulated accelerator cycles (SpArch stages; baselines model
            runtime, not cycles).
        runtime_seconds: modelled kernel runtime of the stage.
        dram_bytes: modelled main-memory traffic of the stage.
        energy_joules: modelled dynamic energy of the stage.
        multiplications: scalar multiplications performed by the kernel.
        additions: scalar additions performed by the kernel.
        host_seconds: measured host wall-time of the stage (host stages
            only; SpGEMM stages keep 0).  Excluded from equality — it is
            a measurement, not modelled cost, so cached re-runs still
            compare equal.
        report: the stage's canonical cost report (SpGEMM stages only).
        stats: full simulator statistics (SpArch stages only; a lossless
            view over ``report``).
        summary: memoisable baseline summary (baseline stages only; a
            lossless view over ``report``).
    """

    name: str
    kind: str
    inputs: tuple[str, ...]
    output_shape: tuple[int, int]
    output_nnz: int
    cycles: int = 0
    runtime_seconds: float = 0.0
    dram_bytes: int = 0
    energy_joules: float = 0.0
    multiplications: int = 0
    additions: int = 0
    host_seconds: float = field(default=0.0, compare=False)
    report: CostReport | None = None
    stats: SimulationStats | None = None
    summary: BaselineSummary | None = None

    @property
    def is_spgemm(self) -> bool:
        """True for SpGEMM stages, False for host stages."""
        return self.kind == SPGEMM_KIND


@dataclass
class WorkloadResult:
    """Outcome of one workload pipeline execution.

    Two runs of the same workload on the same input under the same backend
    compare equal (the result matrix is excluded from equality — the cached
    re-run property test relies on this).

    Attributes:
        workload_id: registry id of the workload ("mcl", "khop", ...).
        backend: name of the SpGEMM backend ("SpArch", "MKL", ...).
        stages: per-stage records in execution order.
        annotations: workload-level scalars set by the build program
            (iterations, convergence flags, derived counts, ...).
        output: the designated output matrix, excluded from equality.
    """

    workload_id: str
    backend: str
    stages: list[StageResult]
    annotations: dict[str, float] = field(default_factory=dict)
    output: CSRMatrix | None = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        """Number of executed stages (SpGEMM and host alike)."""
        return len(self.stages)

    @property
    def spgemm_stages(self) -> list[StageResult]:
        """The SpGEMM stages, in execution order."""
        return [stage for stage in self.stages if stage.is_spgemm]

    @property
    def spgemm_stats(self) -> list[SimulationStats]:
        """Simulator statistics of every SpArch SpGEMM stage."""
        return [stage.stats for stage in self.stages if stage.stats is not None]

    @property
    def total_cycles(self) -> int:
        """Accelerator cycles summed over all stages."""
        return sum(stage.cycles for stage in self.stages)

    @property
    def total_runtime_seconds(self) -> float:
        """Modelled kernel runtime summed over all stages."""
        return sum(stage.runtime_seconds for stage in self.stages)

    @property
    def total_dram_bytes(self) -> int:
        """Modelled DRAM traffic summed over all stages."""
        return sum(stage.dram_bytes for stage in self.stages)

    @property
    def total_energy_joules(self) -> float:
        """Modelled dynamic energy summed over all stages."""
        return sum(stage.energy_joules for stage in self.stages)

    @property
    def total_multiplications(self) -> int:
        """Scalar multiplications summed over all stages."""
        return sum(stage.multiplications for stage in self.stages)

    @property
    def total_additions(self) -> int:
        """Scalar additions summed over all stages."""
        return sum(stage.additions for stage in self.stages)

    @property
    def total_host_seconds(self) -> float:
        """Measured host wall-time summed over all host stages."""
        return sum(stage.host_seconds for stage in self.stages)

    @property
    def host_stages(self) -> list[StageResult]:
        """The host (non-SpGEMM) stages, in execution order."""
        return [stage for stage in self.stages if not stage.is_spgemm]

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline numbers, for reporting and JSON."""
        payload = {
            "num_stages": float(self.num_stages),
            "spgemm_stages": float(len(self.spgemm_stages)),
            "cycles": float(self.total_cycles),
            "runtime_seconds": self.total_runtime_seconds,
            "dram_bytes": float(self.total_dram_bytes),
            "energy_joules": self.total_energy_joules,
            "multiplications": float(self.total_multiplications),
            "additions": float(self.total_additions),
        }
        payload.update(self.annotations)
        return payload

    def aggregate_report(self, *,
                         include_host_seconds: bool = False) -> CostReport:
        """One ``kind="aggregate"`` cost report summing the SpGEMM stages.

        Host stages are charged zero accelerator cost, so the aggregate of
        the SpGEMM stage reports is the pipeline's end-to-end cost in the
        canonical schema (counters, per-category traffic and per-module
        energy all add up).  Workload annotations ride along as extras.

        ``include_host_seconds=True`` adds the measured host wall-time as
        an extra — off by default because wall-time is nondeterministic
        and aggregate reports are compared for equality across runs (the
        fan-out parity tests rely on that).
        """
        reports = [stage.report for stage in self.stages
                   if stage.report is not None]
        extras = dict(self.annotations)
        extras["num_stages"] = float(self.num_stages)
        extras["spgemm_stages"] = float(len(self.spgemm_stages))
        if include_host_seconds:
            extras["host_seconds"] = self.total_host_seconds
        return CostReport.aggregate(reports, engine=self.backend,
                                    extras=extras)


# ----------------------------------------------------------------------
# Stage executors
# ----------------------------------------------------------------------
@dataclass
class StageExecution:
    """What an executor reports back for one SpGEMM stage.

    ``matrix`` is the executor's own functional result when it computes one
    (direct engine execution), or ``None`` when only the cost report was
    produced (runner-memoised execution) — the pipeline then derives the
    product through its canonical host path.
    """

    matrix: CSRMatrix | None
    cycles: int
    runtime_seconds: float
    dram_bytes: int
    energy_joules: float
    multiplications: int
    additions: int
    report: CostReport | None = None
    stats: SimulationStats | None = None
    summary: BaselineSummary | None = None

    @classmethod
    def from_report(cls, report: CostReport, *,
                    matrix: CSRMatrix | None = None) -> "StageExecution":
        """Build a stage execution from a canonical cost report.

        The native ``stats`` / ``summary`` views are rebuilt losslessly
        from the report, so downstream consumers of either schema keep
        working unchanged.
        """
        stats = report.to_stats() if report.kind == "simulation" else None
        summary = (report.to_baseline_summary()
                   if report.kind == "baseline" else None)
        return cls(
            matrix=matrix,
            cycles=report.cycles,
            runtime_seconds=report.runtime_seconds,
            dram_bytes=report.dram_bytes,
            energy_joules=report.energy_joules,
            multiplications=report.multiplications,
            additions=report.additions,
            report=report,
            stats=stats,
            summary=summary,
        )


class StageExecutor(abc.ABC):
    """Dispatches the SpGEMM stages of a pipeline and prices them."""

    #: Backend name used in comparison tables ("SpArch", "MKL", ...).
    backend_name: str = "backend"

    @abc.abstractmethod
    def execute(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                ) -> StageExecution:
        """Run (or price) one ``A · B`` product."""


class EngineExecutor(StageExecutor):
    """SpGEMM stages on any registered engine, addressed by name or instance.

    This is the one dispatch path every pipeline backend goes through —
    :class:`SpArchExecutor` and :class:`BaselineExecutor` are thin
    constructors over it.  Two modes:

    * **direct mode** (default): calls :meth:`Engine.run` and threads the
      engine's own exact result matrix through the pipeline — parity with
      driving the simulator or baseline by hand.
    * **runner mode** (``runner=``): memoises each stage's
      :class:`~repro.metrics.report.CostReport` through the
      :class:`ExperimentRunner` fingerprint cache, so re-running a pipeline
      (or sharing stages between sweeps) replays instead of re-simulating;
      the functional product comes from the pipeline's canonical host path.

    Args:
        engine: a registry name ("sparch", "mkl", "outerspace", ...) or an
            :class:`~repro.engines.base.Engine` instance.
        runner: experiment runner (runner mode).
    """

    def __init__(self, engine: Engine | str, *,
                 runner: ExperimentRunner | None = None) -> None:
        self._engine_impl = resolve_engine(engine)
        self._runner = runner
        self.backend_name = self._engine_impl.display_name

    @property
    def engine(self) -> Engine:
        """The dispatched engine."""
        return self._engine_impl

    def execute(self, matrix_a: CSRMatrix, matrix_b: CSRMatrix
                ) -> StageExecution:
        if self._runner is not None:
            report = self._runner.run_engine(self._engine_impl, matrix_a,
                                             matrix_b=matrix_b)
            return StageExecution.from_report(report)
        run = self._engine_impl.run(matrix_a, matrix_b)
        return StageExecution.from_report(run.report, matrix=run.matrix)


class SpArchExecutor(EngineExecutor):
    """SpGEMM stages on the SpArch simulator.

    A thin constructor over :class:`EngineExecutor` that keeps the
    historical signature: an explicit simulator instance (``engine=``,
    direct mode — exact parity with driving the simulator by hand, which
    is what the ported applications use) or a runner (``runner=``,
    memoised mode), plus the configuration and energy model.

    Args:
        engine: explicit simulator instance (direct mode).
        runner: experiment runner (runner mode); exclusive with ``engine``.
        config: configuration for a fresh simulator / the runner's points.
        energy_model: per-event energy model (paper constants by default).
    """

    def __init__(self, *, engine: SpArch | None = None,
                 runner: ExperimentRunner | None = None,
                 config: SpArchConfig | None = None,
                 energy_model: EnergyModel | None = None) -> None:
        if engine is not None and runner is not None:
            raise ValueError("pass either engine= or runner=, not both")
        super().__init__(SpArchEngine(config, simulator=engine,
                                      energy_model=energy_model),
                         runner=runner)

    @property
    def config(self) -> SpArchConfig:
        """Configuration used for simulations and energy accounting."""
        return self._engine_impl.config


class BaselineExecutor(EngineExecutor):
    """SpGEMM stages on one of the comparison baselines.

    Args:
        baseline: the baseline simulator (OuterSPACE, MKL-class, ...).
        runner: optional experiment runner; when given, each stage's cost
            report is memoised under the runner's fingerprint cache and the
            functional product comes from the pipeline's canonical host
            path.
    """

    def __init__(self, baseline: SpGEMMBaseline, *,
                 runner: ExperimentRunner | None = None) -> None:
        super().__init__(BaselineEngineAdapter(baseline), runner=runner)

    @property
    def baseline(self) -> SpGEMMBaseline:
        return self._engine_impl.baseline


# ----------------------------------------------------------------------
# The builder
# ----------------------------------------------------------------------
class PipelineBuilder:
    """Define-by-run pipeline context handed to workload build programs.

    Values (pipeline inputs and stage outputs) live in one namespace and
    are referred to by name; each :meth:`spgemm` / :meth:`host` call
    executes immediately and appends a :class:`StageResult` to the record.

    Args:
        executor: SpGEMM stage executor (SpArch or a baseline).
        inputs: named input matrices, e.g. ``{"A": matrix}``.
    """

    def __init__(self, executor: StageExecutor, *,
                 inputs: dict[str, CSRMatrix]) -> None:
        if not inputs:
            raise ValueError("a pipeline needs at least one input matrix")
        self._executor = executor
        self._values: dict[str, sp.csr_matrix] = {}
        self._stages: list[StageResult] = []
        self._annotations: dict[str, float] = {}
        self._input_names = tuple(inputs)
        for name, matrix in inputs.items():
            self._store(name, to_scipy(matrix))

    # ------------------------------------------------------------------
    @property
    def executor(self) -> StageExecutor:
        return self._executor

    @property
    def stages(self) -> list[StageResult]:
        """Stage records so far, in execution order."""
        return list(self._stages)

    @property
    def stage_names(self) -> list[str]:
        """Names of the executed stages, in execution order."""
        return [stage.name for stage in self._stages]

    def shape(self, name: str) -> tuple[int, int]:
        """Shape of a named value."""
        return self._get(name).shape

    def scipy_value(self, name: str) -> sp.csr_matrix:
        """The named value as a scipy CSR matrix (treat as read-only)."""
        return self._get(name)

    def value(self, name: str) -> CSRMatrix:
        """The named value as a :class:`CSRMatrix`."""
        return from_scipy(self._get(name))

    def annotate(self, key: str, value: float) -> None:
        """Record one workload-level scalar (iterations, counts, flags)."""
        self._annotations[key] = float(value)

    # ------------------------------------------------------------------
    def _get(self, name: str) -> sp.csr_matrix:
        try:
            return self._values[name]
        except KeyError:
            raise KeyError(
                f"unknown pipeline value {name!r}; known values: "
                f"{', '.join(self._values)}"
            ) from None

    def _store(self, name: str, value: sp.spmatrix) -> None:
        if name in self._values:
            raise ValueError(f"pipeline value {name!r} already exists")
        canonical = sp.csr_matrix(value)
        canonical.sum_duplicates()
        canonical.sort_indices()
        self._values[name] = canonical

    def _record(self, stage: StageResult) -> None:
        self._stages.append(stage)

    # ------------------------------------------------------------------
    def spgemm(self, name: str, left: str, right: str) -> str:
        """Declare and execute one SpGEMM stage ``left · right``.

        Returns ``name`` so programs can chain stages functionally.
        """
        matrix_a = from_scipy(self._get(left))
        # Self-products share one operand object so the runner's cache key
        # takes its A·A fast path consistently across runs.
        matrix_b = matrix_a if right == left else from_scipy(self._get(right))
        execution = self._executor.execute(matrix_a, matrix_b)
        if execution.matrix is not None:
            product: sp.spmatrix = to_scipy(execution.matrix)
        else:
            product = (self._get(left) @ self._get(right)).tocsr()
        self._store(name, product)
        stored = self._values[name]
        self._record(StageResult(
            name=name,
            kind=SPGEMM_KIND,
            inputs=(left, right),
            output_shape=stored.shape,
            output_nnz=int(stored.nnz),
            cycles=execution.cycles,
            runtime_seconds=execution.runtime_seconds,
            dram_bytes=execution.dram_bytes,
            energy_joules=execution.energy_joules,
            multiplications=execution.multiplications,
            additions=execution.additions,
            report=execution.report,
            stats=execution.stats,
            summary=execution.summary,
        ))
        return name

    def host(self, name: str, op: str, *operands: str, **params) -> str:
        """Declare and execute one host stage ``op(*operands, **params)``.

        Returns ``name`` so programs can chain stages functionally.
        Unknown ops and signature mismatches raise with the stage name and
        the registered vocabulary; the measured wall-time of the op lands
        in the record's ``host_seconds``.
        """
        values = [self._get(operand) for operand in operands]
        started = time.perf_counter()
        result = apply_host_op(op, values, params, stage=name)
        elapsed = time.perf_counter() - started
        self._store(name, result)
        stored = self._values[name]
        self._record(StageResult(
            name=name,
            kind=op,
            inputs=tuple(operands),
            output_shape=stored.shape,
            output_nnz=int(stored.nnz),
            host_seconds=elapsed,
        ))
        return name

    def host_fused(self, name: str,
                   steps: list[tuple[str, tuple[str, ...], dict]],
                   *operands: str) -> str:
        """Declare and execute one *fused* host stage.

        ``steps`` is the collapsed op run produced by the compiler's
        fusion pass: ``(op, extra_operands, params)`` triples.  The first
        op consumes ``operands``; every later op consumes the running
        result plus its extras.  Only the final value is stored as a
        pipeline value, and the whole run is one ``StageResult`` of kind
        ``fused(op1+op2+…)`` — which is the fusion win: fewer records,
        fewer materialised intermediates.
        """
        inputs = list(operands)
        values = [self._get(operand) for operand in operands]
        elapsed = 0.0
        result: sp.spmatrix | None = None
        for index, (op, extras, params) in enumerate(steps):
            inputs.extend(extras)
            extra_values = [self._get(extra) for extra in extras]
            step_operands = (values + extra_values if index == 0
                             else [result] + extra_values)
            started = time.perf_counter()
            result = apply_host_op(op, step_operands, params, stage=name)
            elapsed += time.perf_counter() - started
        if result is None:
            raise ValueError(f"fused stage {name!r} has no steps")
        self._store(name, result)
        stored = self._values[name]
        self._record(StageResult(
            name=name,
            kind="fused(" + "+".join(op for op, _, _ in steps) + ")",
            inputs=tuple(inputs),
            output_shape=stored.shape,
            output_nnz=int(stored.nnz),
            host_seconds=elapsed,
        ))
        return name

    # ------------------------------------------------------------------
    def result(self, workload_id: str, output: str | None = None
               ) -> WorkloadResult:
        """Close the pipeline and return its :class:`WorkloadResult`."""
        return WorkloadResult(
            workload_id=workload_id,
            backend=self._executor.backend_name,
            stages=list(self._stages),
            annotations=dict(self._annotations),
            output=self.value(output) if output is not None else None,
        )
