"""The workload compiler: declarative graph specs → pipeline execution.

Workloads are authored declaratively — a JSON/YAML stage graph or a tiny
expression-language program — instead of hand-writing Python against
:class:`~repro.workloads.pipeline.PipelineBuilder` internals.  The front
end parses either source into one typed IR
(:mod:`~repro.workloads.compiler.ir`), the checker rejects ill-formed
graphs with stage-named diagnostics before any engine runs
(:mod:`~repro.workloads.compiler.check`), the scheduler fixes a
deterministic execution order
(:mod:`~repro.workloads.compiler.schedule`), an optional fusion pass
collapses adjacent host ops (:mod:`~repro.workloads.compiler.fuse`), and
the executor lowers the scheduled graph onto the same pipeline builder —
engine registry, runner memoisation, ops registry — that the hand-written
build programs used (:mod:`~repro.workloads.compiler.execute`).

Entry points:

* :func:`compile_graph` — a :class:`GraphSpec` or JSON-compatible dict.
* :func:`compile_expression` — an expression-language program.
* :func:`load_spec` — a ``.json`` / ``.yaml`` spec file.
* :class:`CompiledWorkload` — the compiled artifact: checked graph +
  schedule, runnable on a pipeline, JSON round-trippable, fusable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.workloads.compiler.check import check_graph
from repro.workloads.compiler.execute import execute_graph
from repro.workloads.compiler.exprlang import parse_expression
from repro.workloads.compiler.fuse import fuse_graph
from repro.workloads.compiler.golden import payload_bytes, result_payload
from repro.workloads.compiler.ir import GraphSpec, SpecError
from repro.workloads.pipeline import PipelineBuilder

__all__ = [
    "CompiledWorkload",
    "GraphSpec",
    "SpecError",
    "compile_expression",
    "compile_graph",
    "compile_workload",
    "load_spec",
    "payload_bytes",
    "result_payload",
]


@dataclass(frozen=True)
class CompiledWorkload:
    """A checked, scheduled workload graph, ready to run.

    Attributes:
        graph: the typed IR (already validated by the checker).
        order: node execution order over ``graph.nodes`` (the
            deterministic topological schedule).
    """

    graph: GraphSpec
    order: tuple[int, ...]

    @property
    def name(self) -> str:
        """The workload id the spec declares."""
        return self.graph.name

    def fused(self) -> "CompiledWorkload":
        """This workload with adjacent host ops collapsed (cached)."""
        return _fused(self)

    def resolve_params(self, overrides: dict | None = None) -> dict:
        """Merge declared parameter defaults with overrides and validate."""
        return self.graph.resolve_params(overrides)

    def run(self, pipeline: PipelineBuilder, *,
            params: dict | None = None, fuse: bool = False) -> str:
        """Execute on ``pipeline``; returns the output value name.

        ``params`` are per-run overrides of the declared defaults;
        ``fuse`` runs the host-op-fused variant of the graph (identical
        functional output, fewer host stage records).
        """
        compiled = self.fused() if fuse else self
        resolved = self.graph.resolve_params(params)
        return execute_graph(compiled.graph, compiled.order, pipeline,
                             resolved)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """The spec as canonical JSON (reload with :func:`compile_workload`)."""
        return json.dumps(self.graph.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CompiledWorkload":
        """Parse, check and schedule a JSON spec."""
        return compile_graph(json.loads(text))


@lru_cache(maxsize=None)
def _fused(compiled: CompiledWorkload) -> CompiledWorkload:
    return compile_graph(fuse_graph(compiled.graph))


def compile_graph(spec: GraphSpec | dict) -> CompiledWorkload:
    """Check and schedule one graph spec (typed IR or JSON payload).

    Raises:
        SpecError: the spec is ill-formed — parse errors, dangling or
            duplicate values, shape/sparsity violations, unknown ops —
            each diagnostic naming the offending stage.
    """
    graph = spec if isinstance(spec, GraphSpec) else GraphSpec.from_dict(spec)
    order = check_graph(graph)
    return CompiledWorkload(graph=graph, order=order)


def compile_expression(text: str, *, name: str | None = None
                       ) -> CompiledWorkload:
    """Compile one expression-language program (see
    :mod:`~repro.workloads.compiler.exprlang`)."""
    return compile_graph(parse_expression(text, name=name))


def compile_workload(source: GraphSpec | dict | str, *,
                     name: str | None = None) -> CompiledWorkload:
    """Compile from any supported source.

    A dict or :class:`GraphSpec` is treated as a stage graph; a string is
    parsed as JSON when it starts with ``{``, as an expression-language
    program otherwise.
    """
    if isinstance(source, str):
        if source.lstrip().startswith("{"):
            return compile_graph(json.loads(source))
        return compile_expression(source, name=name)
    return compile_graph(source)


def load_spec(path: str | Path) -> CompiledWorkload:
    """Compile a spec file: ``.json``, ``.yaml``/``.yml``, or an
    expression-language program (any other suffix)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".json":
        return compile_graph(json.loads(text))
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - environment-dependent
            raise SpecError(
                f"cannot load {path.name}: PyYAML is not installed "
                "(use a .json spec instead)") from None
        return compile_graph(yaml.safe_load(text))
    return compile_expression(text, name=path.stem)
