"""The workload compiler's typed intermediate representation.

A workload is authored as a *graph spec* — a JSON/YAML stage graph or an
expression-language program (:mod:`repro.workloads.compiler.exprlang`) —
and parsed into the small typed IR defined here.  The IR is deliberately
first-order and fully serialisable: every node is a frozen dataclass built
from hashable leaves, ``GraphSpec.to_dict()`` / ``from_dict()`` round-trip
losslessly through JSON, and two specs compare equal iff they describe the
same graph (the round-trip property test relies on this).

Node kinds
==========

* :class:`StageIR` — one named stage: an SpGEMM (``op == "spgemm"``) or a
  host op from the ops registry.  A stage may be *conditional*: ``when``
  names a boolean parameter, and when it is falsy the stage is skipped and
  its name aliases ``otherwise`` instead (how ``triangles`` makes its
  ``simple_graph`` normalisation optional).
* :class:`ChainIR` — a repeated SpGEMM threading one operand through
  ``count`` steps (``A^k`` powers, GNN layer propagation).  ``thread``
  picks which side carries the previous product; the other side is fixed.
* :class:`LoopIR` — a data-dependent iteration: run ``body`` up to
  ``max_iterations`` times, rebinding ``var`` to ``update`` after each
  pass, stopping early when the registered stop probe drops below
  ``tolerance`` (MCL convergence, PageRank power iteration, AMG
  coarsening).
* :class:`RepeatIR` — ``count`` independent instances of ``body`` indexed
  by ``counter`` (the batched serving mix); downstream stages collect all
  instances with a :class:`GatherRef` input.
* :class:`AnnotateIR` — record one workload-level scalar: a registered
  probe applied to a named value, or a parameter echoed verbatim.
* :class:`FusedStageIR` — produced by the fusion pass only
  (:mod:`repro.workloads.compiler.fuse`): a run of adjacent host ops
  collapsed into one stage.

Scalar values in stage parameters / counts / tolerances are either JSON
literals or symbolic references resolved at run time: :class:`ParamRef`
(a workload parameter, with an optional integer offset — ``k - 1`` chain
lengths) and :class:`CounterRef` (the enclosing loop/repeat counter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

__all__ = [
    "AnnotateIR",
    "ChainIR",
    "CounterRef",
    "FusedStageIR",
    "FusedStep",
    "GatherRef",
    "GraphSpec",
    "InputIR",
    "LoopIR",
    "NodeIR",
    "ParamIR",
    "ParamRef",
    "RepeatIR",
    "SpecError",
    "StageIR",
    "StopIR",
    "SPGEMM_OP",
    "scalar_from_payload",
    "scalar_to_payload",
    "value_ref_from_payload",
    "value_ref_to_payload",
]

#: Stage op naming the SpGEMM kernel (every other op is a host op).
SPGEMM_OP = "spgemm"


class SpecError(ValueError):
    """A workload spec is ill-formed.

    Raised by the parser, the checker and the scheduler.  ``stage`` names
    the offending stage when the diagnostic is stage-level — every
    stage-level message starts with ``stage '<name>':`` so failures point
    at the exact node before any engine runs.
    """

    def __init__(self, message: str, *, stage: str | None = None) -> None:
        super().__init__(f"stage {stage!r}: {message}" if stage else message)
        self.stage = stage


# ----------------------------------------------------------------------
# Scalar values: literals and symbolic references
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParamRef:
    """A reference to a workload parameter, plus an integer offset.

    ``ParamRef("k", -1)`` resolves to ``params["k"] - 1`` — how a chain
    expresses the ``k − 1`` products of ``A^k``.
    """

    name: str
    offset: int = 0


@dataclass(frozen=True)
class CounterRef:
    """The value of the enclosing loop/repeat counter."""

    name: str


Scalar = Union[int, float, bool, str, ParamRef, CounterRef]


def scalar_to_payload(value: Scalar):
    """Render one scalar value as a JSON-compatible payload."""
    if isinstance(value, ParamRef):
        payload: dict = {"param": value.name}
        if value.offset:
            payload["offset"] = value.offset
        return payload
    if isinstance(value, CounterRef):
        return {"counter": value.name}
    return value


def scalar_from_payload(payload) -> Scalar:
    """Parse one scalar payload (inverse of :func:`scalar_to_payload`)."""
    if isinstance(payload, dict):
        if "param" in payload:
            return ParamRef(str(payload["param"]),
                            int(payload.get("offset", 0)))
        if "counter" in payload:
            return CounterRef(str(payload["counter"]))
        raise SpecError(f"unknown scalar reference {payload!r}; expected "
                        "{'param': ...} or {'counter': ...}")
    if not isinstance(payload, (int, float, bool, str)):
        raise SpecError(f"scalar values must be JSON literals or "
                        f"param/counter references, got {payload!r}")
    return payload


# ----------------------------------------------------------------------
# Value references: plain names and gathers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GatherRef:
    """All instances of a repeated stage, as one variadic operand list.

    ``template`` contains the repeat counter placeholder (``tile[{j}]``)
    and ``count`` sizes the expansion — it must match the repeat node that
    produced the instances.
    """

    template: str
    count: Scalar
    start: int = 0


ValueRef = Union[str, GatherRef]


def value_ref_to_payload(ref: ValueRef):
    """Render one value reference as a JSON-compatible payload."""
    if isinstance(ref, GatherRef):
        payload: dict = {"all": ref.template,
                         "count": scalar_to_payload(ref.count)}
        if ref.start:
            payload["start"] = ref.start
        return payload
    return ref


def value_ref_from_payload(payload) -> ValueRef:
    """Parse one value-reference payload."""
    if isinstance(payload, dict):
        if "all" not in payload or "count" not in payload:
            raise SpecError(f"gather references need 'all' and 'count', "
                            f"got {payload!r}")
        return GatherRef(str(payload["all"]),
                         scalar_from_payload(payload["count"]),
                         int(payload.get("start", 0)))
    if not isinstance(payload, str):
        raise SpecError(f"value references must be names or gathers, "
                        f"got {payload!r}")
    return payload


def _params_to_payload(params: tuple[tuple[str, Scalar], ...]) -> dict:
    return {key: scalar_to_payload(value) for key, value in params}


def _params_from_payload(payload: dict | None
                         ) -> tuple[tuple[str, Scalar], ...]:
    if not payload:
        return ()
    if not isinstance(payload, dict):
        raise SpecError(f"stage params must be a mapping, got {payload!r}")
    # Canonical key order: params are keyword arguments, so order carries
    # no meaning — sorting makes dict → IR → JSON → IR a fixed point.
    return tuple((str(key), scalar_from_payload(payload[key]))
                 for key in sorted(payload))


# ----------------------------------------------------------------------
# Declarations: inputs and parameters
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InputIR:
    """One named input matrix.

    Attributes:
        name: pipeline value name (``run_workload`` binds ``"A"``).
        square: require a square matrix (checked symbolically at compile
            time and against the concrete operand at run time).
        assume: structure flags the checker may rely on
            (``"nonnegative"``, ``"binary"``, ``"symmetric"``).
    """

    name: str
    square: bool = False
    assume: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        payload: dict = {"name": self.name}
        if self.square:
            payload["square"] = True
        if self.assume:
            payload["assume"] = list(self.assume)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "InputIR":
        return cls(str(payload["name"]), bool(payload.get("square", False)),
                   tuple(payload.get("assume", ())))


@dataclass(frozen=True)
class ParamIR:
    """One declared workload parameter with its default and constraints.

    ``minimum`` is inclusive ("must be at least"), ``above`` exclusive
    ("must exceed") — the messages match the hand-written build programs
    the compiled specs replace byte for byte.
    """

    name: str
    default: Union[int, float, bool, str, None] = None
    minimum: Union[int, float, None] = None
    above: Union[int, float, None] = None

    def validate(self, value) -> None:
        """Check one resolved value; raises ``ValueError`` like the legacy
        build programs did."""
        if self.minimum is not None and value < self.minimum:
            raise ValueError(f"{self.name} must be at least {self.minimum}, "
                             f"got {value}")
        if self.above is not None and value <= self.above:
            raise ValueError(f"{self.name} must exceed {self.above:g}, "
                             f"got {value}")

    def to_dict(self) -> dict:
        payload: dict = {"name": self.name, "default": self.default}
        if self.minimum is not None:
            payload["min"] = self.minimum
        if self.above is not None:
            payload["above"] = self.above
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ParamIR":
        return cls(str(payload["name"]), payload.get("default"),
                   payload.get("min"), payload.get("above"))


# ----------------------------------------------------------------------
# Nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageIR:
    """One named SpGEMM or host-op stage."""

    name: str
    op: str
    inputs: tuple[ValueRef, ...]
    params: tuple[tuple[str, Scalar], ...] = ()
    when: str | None = None
    otherwise: str | None = None
    bind: str | None = None

    def to_dict(self) -> dict:
        payload: dict = {"stage": self.name, "op": self.op,
                         "inputs": [value_ref_to_payload(ref)
                                    for ref in self.inputs]}
        if self.params:
            payload["params"] = _params_to_payload(self.params)
        if self.when is not None:
            payload["when"] = self.when
        if self.otherwise is not None:
            payload["else"] = self.otherwise
        if self.bind is not None:
            payload["bind"] = self.bind
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "StageIR":
        return cls(
            name=str(payload["stage"]),
            op=str(payload["op"]),
            inputs=tuple(value_ref_from_payload(ref)
                         for ref in payload.get("inputs", ())),
            params=_params_from_payload(payload.get("params")),
            when=payload.get("when"),
            otherwise=payload.get("else"),
            bind=payload.get("bind"),
        )


@dataclass(frozen=True)
class FusedStep:
    """One op of a fused host stage (fusion pass output).

    The first step consumes the fused stage's ``inputs``; every later step
    consumes the running value as its first operand plus ``extra_inputs``.
    """

    op: str
    extra_inputs: tuple[ValueRef, ...] = ()
    params: tuple[tuple[str, Scalar], ...] = ()

    def to_dict(self) -> dict:
        payload: dict = {"op": self.op}
        if self.extra_inputs:
            payload["extra_inputs"] = [value_ref_to_payload(ref)
                                       for ref in self.extra_inputs]
        if self.params:
            payload["params"] = _params_to_payload(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FusedStep":
        return cls(str(payload["op"]),
                   tuple(value_ref_from_payload(ref)
                         for ref in payload.get("extra_inputs", ())),
                   _params_from_payload(payload.get("params")))


@dataclass(frozen=True)
class FusedStageIR:
    """A run of adjacent host ops collapsed into one stage.

    Keeps the *last* collapsed stage's name and bind, so downstream
    references (loop updates, the graph output) survive fusion untouched.
    """

    name: str
    inputs: tuple[ValueRef, ...]
    steps: tuple[FusedStep, ...]
    bind: str | None = None

    @property
    def kind(self) -> str:
        """The stage-record kind string, e.g. ``fused(inflate+prune)``."""
        return "fused(" + "+".join(step.op for step in self.steps) + ")"

    def to_dict(self) -> dict:
        payload: dict = {"fused": self.name,
                         "inputs": [value_ref_to_payload(ref)
                                    for ref in self.inputs],
                         "steps": [step.to_dict() for step in self.steps]}
        if self.bind is not None:
            payload["bind"] = self.bind
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FusedStageIR":
        return cls(str(payload["fused"]),
                   tuple(value_ref_from_payload(ref)
                         for ref in payload.get("inputs", ())),
                   tuple(FusedStep.from_dict(step)
                         for step in payload.get("steps", ())),
                   payload.get("bind"))


@dataclass(frozen=True)
class ChainIR:
    """A repeated SpGEMM threading one operand through ``count`` steps.

    Step ``s`` (``s = start, start+1, …``) runs ``prev · fixed`` (thread
    ``"left"``) or ``fixed · prev`` (thread ``"right"``) and names the
    product ``template.format(step=s)``; ``prev`` starts at ``first``.
    ``bind`` aliases the final product (the chain's exported value).
    """

    template: str
    first: ValueRef
    fixed: ValueRef
    count: Scalar
    bind: str
    thread: str = "left"
    start: int = 0

    def to_dict(self) -> dict:
        payload: dict = {"chain": self.template,
                         "first": value_ref_to_payload(self.first),
                         "fixed": value_ref_to_payload(self.fixed),
                         "count": scalar_to_payload(self.count),
                         "bind": self.bind}
        if self.thread != "left":
            payload["thread"] = self.thread
        if self.start:
            payload["start"] = self.start
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ChainIR":
        chain = cls(str(payload["chain"]),
                    value_ref_from_payload(payload["first"]),
                    value_ref_from_payload(payload["fixed"]),
                    scalar_from_payload(payload["count"]),
                    str(payload["bind"]),
                    str(payload.get("thread", "left")),
                    int(payload.get("start", 0)))
        if chain.thread not in ("left", "right"):
            raise SpecError(f"chain thread must be 'left' or 'right', got "
                            f"{chain.thread!r}", stage=chain.template)
        return chain


@dataclass(frozen=True)
class StopIR:
    """A loop's early-exit test: ``probe(current, previous) < tolerance``."""

    probe: str
    tolerance: Scalar

    def to_dict(self) -> dict:
        return {"probe": self.probe,
                "tolerance": scalar_to_payload(self.tolerance)}

    @classmethod
    def from_dict(cls, payload: dict) -> "StopIR":
        return cls(str(payload["probe"]),
                   scalar_from_payload(payload["tolerance"]))


@dataclass(frozen=True)
class LoopIR:
    """A bounded, data-dependent iteration with one carried value.

    Body stage names may use the counter placeholder (``inflate[{i}]``);
    body nodes see ``var`` bound to the current carry and rebind it to the
    value named by ``update`` after each pass.  ``stop`` (optional) ends
    the loop once its probe reads below tolerance — evaluated *after* the
    update, exactly like the hand-written convergence loops did.  On exit,
    ``iterations_key`` / ``converged_key`` (when set) record the trip
    count and early-exit flag as workload annotations.
    """

    var: str
    init: ValueRef
    body: tuple["NodeIR", ...]
    update: str
    max_iterations: Scalar
    counter: str = "i"
    counter_start: int = 1
    stop: StopIR | None = None
    iterations_key: str | None = None
    converged_key: str | None = None

    def to_dict(self) -> dict:
        payload: dict = {
            "var": self.var,
            "init": value_ref_to_payload(self.init),
            "body": [node_to_payload(node) for node in self.body],
            "update": self.update,
            "max_iterations": scalar_to_payload(self.max_iterations),
        }
        if self.counter != "i":
            payload["counter"] = self.counter
        if self.counter_start != 1:
            payload["counter_start"] = self.counter_start
        if self.stop is not None:
            payload["stop"] = self.stop.to_dict()
        if self.iterations_key is not None:
            payload["iterations_key"] = self.iterations_key
        if self.converged_key is not None:
            payload["converged_key"] = self.converged_key
        return {"loop": payload}

    @classmethod
    def from_dict(cls, payload: dict) -> "LoopIR":
        return cls(
            var=str(payload["var"]),
            init=value_ref_from_payload(payload["init"]),
            body=tuple(node_from_payload(node)
                       for node in payload.get("body", ())),
            update=str(payload["update"]),
            max_iterations=scalar_from_payload(payload["max_iterations"]),
            counter=str(payload.get("counter", "i")),
            counter_start=int(payload.get("counter_start", 1)),
            stop=(StopIR.from_dict(payload["stop"])
                  if payload.get("stop") is not None else None),
            iterations_key=payload.get("iterations_key"),
            converged_key=payload.get("converged_key"),
        )


@dataclass(frozen=True)
class RepeatIR:
    """``count`` independent instances of ``body``, indexed by ``counter``.

    Unlike :class:`LoopIR` there is no carried value: instances are
    independent (the batched serving mix).  Downstream nodes collect every
    instance of a repeated stage with a :class:`GatherRef`.
    """

    counter: str
    count: Scalar
    body: tuple["NodeIR", ...]
    start: int = 0

    def to_dict(self) -> dict:
        payload: dict = {
            "counter": self.counter,
            "count": scalar_to_payload(self.count),
            "body": [node_to_payload(node) for node in self.body],
        }
        if self.start:
            payload["start"] = self.start
        return {"repeat": payload}

    @classmethod
    def from_dict(cls, payload: dict) -> "RepeatIR":
        return cls(str(payload["counter"]),
                   scalar_from_payload(payload["count"]),
                   tuple(node_from_payload(node)
                         for node in payload.get("body", ())),
                   int(payload.get("start", 0)))


@dataclass(frozen=True)
class AnnotateIR:
    """Record one workload-level scalar annotation.

    Either a registered probe applied to a named value (``probe`` + ``of``)
    or a parameter echoed verbatim (``param``).
    """

    key: str
    probe: str | None = None
    of: str | None = None
    param: str | None = None
    params: tuple[tuple[str, Scalar], ...] = ()

    def to_dict(self) -> dict:
        payload: dict = {"annotate": self.key}
        if self.param is not None:
            payload["param"] = self.param
        else:
            payload["probe"] = self.probe
            payload["of"] = self.of
            if self.params:
                payload["params"] = _params_to_payload(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AnnotateIR":
        if payload.get("param") is not None:
            return cls(str(payload["annotate"]), param=str(payload["param"]))
        return cls(str(payload["annotate"]),
                   probe=str(payload["probe"]), of=str(payload["of"]),
                   params=_params_from_payload(payload.get("params")))


NodeIR = Union[StageIR, FusedStageIR, ChainIR, LoopIR, RepeatIR, AnnotateIR]


def node_to_payload(node: NodeIR) -> dict:
    """Render one node as its JSON payload."""
    return node.to_dict()


def node_from_payload(payload: dict) -> NodeIR:
    """Parse one node payload by its discriminating key."""
    if not isinstance(payload, dict):
        raise SpecError(f"graph nodes must be mappings, got {payload!r}")
    if "stage" in payload:
        return StageIR.from_dict(payload)
    if "fused" in payload:
        return FusedStageIR.from_dict(payload)
    if "chain" in payload:
        return ChainIR.from_dict(payload)
    if "loop" in payload:
        return LoopIR.from_dict(payload["loop"])
    if "repeat" in payload:
        return RepeatIR.from_dict(payload["repeat"])
    if "annotate" in payload:
        return AnnotateIR.from_dict(payload)
    raise SpecError(f"unknown node kind in {sorted(payload)!r}; expected "
                    "one of stage/fused/chain/loop/repeat/annotate")


# ----------------------------------------------------------------------
# The graph spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphSpec:
    """One declarative workload graph: inputs, params, nodes, output."""

    name: str
    inputs: tuple[InputIR, ...]
    params: tuple[ParamIR, ...] = ()
    nodes: tuple[NodeIR, ...] = ()
    output: str = ""

    # ------------------------------------------------------------------
    def param_names(self) -> list[str]:
        """Declared parameter names, in declaration order."""
        return [param.name for param in self.params]

    def resolve_params(self, overrides: dict | None = None) -> dict:
        """Merge declared defaults with ``overrides`` and validate.

        Raises:
            TypeError: an override names no declared parameter (matching
                what a hand-written build program's signature would do).
            ValueError: a value violates a declared constraint, with the
                same message the legacy build programs raised.
        """
        declared = {param.name: param for param in self.params}
        merged = {name: param.default for name, param in declared.items()}
        for key, value in (overrides or {}).items():
            if key not in declared:
                raise TypeError(
                    f"workload {self.name!r} got an unexpected parameter "
                    f"{key!r}; declared parameters: "
                    f"{', '.join(declared) or '(none)'}")
            merged[key] = value
        for name, param in declared.items():
            param.validate(merged[name])
        return merged

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The spec as a JSON-compatible payload (inverse of
        :meth:`from_dict`)."""
        return {
            "workload": self.name,
            "inputs": [inp.to_dict() for inp in self.inputs],
            "params": [param.to_dict() for param in self.params],
            "nodes": [node_to_payload(node) for node in self.nodes],
            "output": self.output,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GraphSpec":
        """Parse one graph-spec payload.

        Raises:
            SpecError: missing fields or malformed nodes.
        """
        if not isinstance(payload, dict):
            raise SpecError(f"a graph spec must be a mapping, got "
                            f"{type(payload).__name__}")
        missing = [key for key in ("workload", "nodes", "output")
                   if key not in payload]
        if missing:
            raise SpecError(f"graph spec is missing {', '.join(missing)}")
        inputs = payload.get("inputs") or [{"name": "A"}]
        return cls(
            name=str(payload["workload"]),
            inputs=tuple(
                InputIR.from_dict(inp) if isinstance(inp, dict)
                else InputIR(str(inp))
                for inp in inputs),
            params=tuple(ParamIR.from_dict(param)
                         for param in payload.get("params", ())),
            nodes=tuple(node_from_payload(node)
                        for node in payload.get("nodes", ())),
            output=str(payload["output"]),
        )
