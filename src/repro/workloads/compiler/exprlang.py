"""The tiny expression language front end.

A workload can be authored as a short line-oriented program instead of a
JSON/YAML stage graph.  Each line is one statement::

    workload cosine                  # workload id
    input A square                   # input declaration (+ assume flags)
    param threshold = 0.2 above 0    # parameter with default + constraint
    row_normalized = normalize_rows(A)
    transposed = row_normalized'     # postfix ' / ᵀ / .T transpose
    similarity = row_normalized · transposed
    thresholded = prune(similarity, threshold=threshold)
    annotate similar_pairs = off_diagonal_pairs(thresholded)
    output thresholded

Expressions support SpGEMM products (``·`` or ``@``), element-wise masking
(``⊙`` — lowers to the ``mask`` host op), postfix transpose, matrix powers
(``A ^ k`` — lowers to a :class:`~repro.workloads.compiler.ir.ChainIR`
of ``k − 1`` products named ``target[2] … target[k]``), and host ops as
named calls with keyword parameters.  Bare identifiers in keyword position
are parameter references.  An assignment may be conditional::

    adjacency = simple_graph(A) when normalize else A

Each statement's target names the stage it defines; nested sub-expressions
get deterministic generated names (``target.1``, ``target.2``, …) so the
lowered graph — and therefore the schedule — is a pure function of the
source text.  Statements lower in source order, which is already
topological, so the scheduler preserves it verbatim.
"""

from __future__ import annotations

import re

from repro.workloads.compiler.ir import (
    AnnotateIR,
    ChainIR,
    GraphSpec,
    InputIR,
    NodeIR,
    ParamIR,
    ParamRef,
    SpecError,
    StageIR,
    SPGEMM_OP,
)

__all__ = ["parse_expression"]

_TOKEN_RE = re.compile(
    r"""(?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
      | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)  # ASCII only: ᵀ stays an operator
      | (?P<string>"[^"]*")
      | (?P<op>\.T|·|⊙|ᵀ|'|@|\^|\(|\)|,|=)
      | (?P<ws>[ \t]+)
      | (?P<comment>\#.*)
    """,
    re.VERBOSE,
)

#: Structure flags an ``input`` line may assume.
_ASSUME_FLAGS = ("nonnegative", "binary", "symmetric")


def _tokenize(line: str, line_no: int) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(line):
        match = _TOKEN_RE.match(line, pos)
        if match is None:
            raise SpecError(f"line {line_no}: cannot tokenize "
                            f"{line[pos:pos + 10]!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, match.group()))
    return tokens


class _Line:
    """One tokenized statement with a cursor."""

    def __init__(self, tokens: list[tuple[str, str]], line_no: int) -> None:
        self.tokens = tokens
        self.line_no = line_no
        self.pos = 0

    def error(self, message: str) -> SpecError:
        return SpecError(f"line {self.line_no}: {message}")

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of line")
        self.pos += 1
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == text:
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> None:
        token = self.peek()
        if token is None or token[1] != text:
            got = token[1] if token else "end of line"
            raise self.error(f"expected {text!r}, got {got!r}")
        self.pos += 1

    def ident(self, what: str) -> str:
        token = self.peek()
        if token is None or token[0] != "ident":
            got = token[1] if token else "end of line"
            raise self.error(f"expected {what}, got {got!r}")
        self.pos += 1
        return token[1]

    def done(self) -> None:
        token = self.peek()
        if token is not None:
            raise self.error(f"unexpected trailing {token[1]!r}")


def _literal(line: _Line):
    """One scalar literal: number, true/false, or a quoted string."""
    kind, text = line.next()
    if kind == "number":
        return float(text) if ("." in text or "e" in text.lower()) \
            else int(text)
    if kind == "string":
        return text[1:-1]
    if kind == "ident" and text in ("true", "false"):
        return text == "true"
    raise line.error(f"expected a literal value, got {text!r}")


def _scalar(line: _Line):
    """A scalar argument: a literal or a bare parameter reference."""
    token = line.peek()
    if token is not None and token[0] == "ident" \
            and token[1] not in ("true", "false"):
        line.pos += 1
        return ParamRef(token[1])
    return _literal(line)


# ----------------------------------------------------------------------
# Expression parsing (to a mini-AST) and lowering (to IR nodes)
# ----------------------------------------------------------------------
def _parse_expr(line: _Line):
    left = _parse_pow(line)
    while True:
        token = line.peek()
        if token is None or token[1] not in ("·", "@", "⊙"):
            return left
        line.pos += 1
        right = _parse_pow(line)
        op = SPGEMM_OP if token[1] in ("·", "@") else "mask"
        left = ("binary", op, left, right)


def _parse_pow(line: _Line):
    base = _parse_postfix(line)
    if line.accept("^"):
        token = line.next()
        if token[0] == "number":
            text = token[1]
            if "." in text or "e" in text.lower():
                raise line.error("matrix powers need an integer exponent")
            return ("pow", base, int(text))
        if token[0] == "ident":
            return ("pow", base, ParamRef(token[1]))
        raise line.error(f"expected an exponent, got {token[1]!r}")
    return base


def _parse_postfix(line: _Line):
    node = _parse_atom(line)
    while True:
        token = line.peek()
        if token is not None and token[1] in ("'", "ᵀ", ".T"):
            line.pos += 1
            node = ("transpose", node)
        else:
            return node


def _parse_atom(line: _Line):
    if line.accept("("):
        inner = _parse_expr(line)
        line.expect(")")
        return inner
    name = line.ident("a value name or op call")
    if not line.accept("("):
        return ("ref", name)
    args: list = []
    kwargs: list[tuple[str, object]] = []
    if not line.accept(")"):
        while True:
            token = line.peek()
            following = (line.tokens[line.pos + 1]
                         if line.pos + 1 < len(line.tokens) else None)
            if token is not None and token[0] == "ident" \
                    and following is not None and following[1] == "=":
                key = line.ident("a parameter name")
                line.expect("=")
                kwargs.append((key, _scalar(line)))
            else:
                if kwargs:
                    raise line.error("positional operands must come "
                                     "before keyword parameters")
                args.append(_parse_expr(line))
            if line.accept(")"):
                break
            line.expect(",")
    return ("call", name, args, kwargs)


class _Lowering:
    """Lowers one statement's AST, allocating deterministic stage names."""

    def __init__(self, line: _Line, target: str) -> None:
        self.line = line
        self.target = target
        self.counter = 0
        self.nodes: list[NodeIR] = []

    def fresh(self) -> str:
        self.counter += 1
        return f"{self.target}.{self.counter}"

    def lower(self, ast, name: str | None = None) -> str:
        kind = ast[0]
        if kind == "ref":
            if name is not None:
                raise self.line.error(
                    f"{name!r} would merely alias {ast[1]!r}; reference "
                    f"{ast[1]!r} directly instead")
            return ast[1]
        stage = name if name is not None else self.fresh()
        if kind == "call":
            _, op, args, kwargs = ast
            inputs = tuple(self.lower(arg) for arg in args)
            self.nodes.append(StageIR(stage, op, inputs,
                                      params=tuple(sorted(kwargs))))
        elif kind == "binary":
            _, op, left, right = ast
            operands = (self.lower(left), self.lower(right))
            self.nodes.append(StageIR(stage, op, operands))
        elif kind == "transpose":
            operand = self.lower(ast[1])
            self.nodes.append(StageIR(stage, "transpose", (operand,)))
        else:  # pow
            _, base, exponent = ast
            first = self.lower(base)
            if isinstance(exponent, ParamRef):
                count = ParamRef(exponent.name, -1)
            else:
                if exponent < 2:
                    raise self.line.error(
                        f"matrix powers need an exponent of at least 2, "
                        f"got {exponent}")
                count = exponent - 1
            self.nodes.append(ChainIR(
                template=f"{stage}[{{step}}]", first=first, fixed=first,
                count=count, bind=stage, start=2))
        return stage


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
def parse_expression(text: str, *, name: str | None = None) -> GraphSpec:
    """Parse one expression-language program into a :class:`GraphSpec`.

    Args:
        text: the program (see the module docstring for the grammar).
        name: workload id fallback when the program has no ``workload``
            line.

    Raises:
        SpecError: any syntax error, with the offending line number.
    """
    workload = name
    inputs: list[InputIR] = []
    params: list[ParamIR] = []
    nodes: list[NodeIR] = []
    output: str | None = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        tokens = _tokenize(raw, line_no)
        if not tokens:
            continue
        line = _Line(tokens, line_no)
        head = tokens[0][1]

        if head == "workload":
            line.pos = 1
            workload = line.ident("a workload id")
            line.done()
        elif head == "input":
            line.pos = 1
            input_name = line.ident("an input name")
            square = False
            assume: list[str] = []
            while line.peek() is not None:
                flag = line.ident("an input flag")
                if flag == "square":
                    square = True
                elif flag in _ASSUME_FLAGS:
                    assume.append(flag)
                else:
                    raise line.error(
                        f"unknown input flag {flag!r}; expected square, "
                        f"{', '.join(_ASSUME_FLAGS)}")
            inputs.append(InputIR(input_name, square, tuple(assume)))
        elif head == "param":
            line.pos = 1
            param_name = line.ident("a parameter name")
            line.expect("=")
            default = _literal(line)
            minimum = above = None
            while line.peek() is not None:
                bound = line.ident("min or above")
                if bound == "min":
                    minimum = _literal(line)
                elif bound == "above":
                    above = _literal(line)
                else:
                    raise line.error(f"unknown constraint {bound!r}; "
                                     "expected min or above")
            params.append(ParamIR(param_name, default, minimum, above))
        elif head == "annotate":
            line.pos = 1
            key = line.ident("an annotation key")
            line.expect("=")
            if line.accept("param"):
                nodes.append(AnnotateIR(key, param=line.ident(
                    "a parameter name")))
                line.done()
                continue
            probe = line.ident("a probe name")
            line.expect("(")
            of = line.ident("a value name")
            probe_params: list[tuple[str, object]] = []
            while line.accept(","):
                param_key = line.ident("a parameter name")
                line.expect("=")
                probe_params.append((param_key, _scalar(line)))
            line.expect(")")
            line.done()
            nodes.append(AnnotateIR(key, probe=probe, of=of,
                                    params=tuple(sorted(probe_params))))
        elif head == "output":
            line.pos = 1
            output = line.ident("a value name")
            line.done()
        else:
            target = line.ident("a stage name")
            line.expect("=")
            ast = _parse_expr(line)
            when = otherwise = None
            if line.accept("when"):
                when = line.ident("a parameter name")
                line.expect("else")
                otherwise = line.ident("a value name")
            line.done()
            lowering = _Lowering(line, target)
            lowering.lower(ast, name=target)
            statement_nodes = lowering.nodes
            if when is not None:
                final = statement_nodes[-1]
                if not isinstance(final, StageIR) or final.name != target:
                    raise line.error("a conditional assignment must lower "
                                     "to a single stage (powers cannot be "
                                     "conditional)")
                statement_nodes[-1] = StageIR(
                    final.name, final.op, final.inputs, final.params,
                    when=when, otherwise=otherwise, bind=final.bind)
            nodes.extend(statement_nodes)

    if workload is None:
        raise SpecError("the program never names its workload (add a "
                        "'workload <id>' line)")
    if output is None:
        raise SpecError(f"workload {workload!r} never declares its output "
                        "(add an 'output <value>' line)")
    if not inputs:
        inputs = [InputIR("A")]
    return GraphSpec(name=workload, inputs=tuple(inputs),
                     params=tuple(params), nodes=tuple(nodes),
                     output=output)
