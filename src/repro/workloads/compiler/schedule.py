"""Topological scheduling of graph-spec nodes.

Spec authors may declare nodes in any order; the scheduler computes the
execution order over the *top-level* nodes from their value dependencies
(loop/repeat bodies are sequential blocks and keep their declared order).

Order guarantee
===============

The schedule is the unique Kahn topological order that breaks ties by
declaration index: among all nodes whose dependencies are satisfied, the
earliest-declared runs first.  Consequences the rest of the stack relies
on:

* a spec whose declaration order is already topological schedules exactly
  in declaration order — hand-authored specs read top to bottom;
* the schedule is a pure function of the spec, so serialising a compiled
  workload and reloading it reproduces the identical schedule (the
  round-trip property test pins this);
* annotation nodes order among themselves by declaration, which keeps the
  annotation dict's insertion order — and therefore serialised workload
  payloads — deterministic.

Cycles and dangling references are rejected here with stage-named
diagnostics before any shape checking runs.
"""

from __future__ import annotations

from repro.workloads.compiler.ir import (
    AnnotateIR,
    ChainIR,
    FusedStageIR,
    GatherRef,
    GraphSpec,
    LoopIR,
    NodeIR,
    RepeatIR,
    SpecError,
    StageIR,
)

__all__ = ["node_label", "node_consumes", "node_produces", "schedule_nodes"]


def node_label(node: NodeIR) -> str:
    """A human-readable label for diagnostics."""
    if isinstance(node, (StageIR, FusedStageIR)):
        return node.name
    if isinstance(node, ChainIR):
        return node.template
    if isinstance(node, LoopIR):
        return f"loop[{node.var}]"
    if isinstance(node, RepeatIR):
        return f"repeat[{node.counter}]"
    return f"annotate[{node.key}]"


def _ref_names(refs) -> set[str]:
    names: set[str] = set()
    for ref in refs:
        if isinstance(ref, GatherRef):
            names.add(ref.template)
        else:
            names.add(ref)
    return names


def node_produces(node: NodeIR) -> set[str]:
    """Every value name (or gatherable template) a node defines."""
    if isinstance(node, (StageIR, FusedStageIR)):
        produced = {node.name}
        if node.bind:
            produced.add(node.bind)
        return produced
    if isinstance(node, ChainIR):
        return {node.template, node.bind}
    if isinstance(node, LoopIR):
        return {node.var}
    if isinstance(node, RepeatIR):
        produced: set[str] = set()
        for child in node.body:
            produced |= node_produces(child)
        return produced
    return set()


def node_consumes(node: NodeIR) -> set[str]:
    """Every *external* value name a node consumes.

    For loop/repeat nodes the body's internal definitions (including the
    loop variable) are subtracted — only references that must resolve at
    the top level remain.
    """
    if isinstance(node, StageIR):
        consumed = _ref_names(node.inputs)
        if node.otherwise is not None:
            consumed.add(node.otherwise)
        return consumed
    if isinstance(node, FusedStageIR):
        consumed = _ref_names(node.inputs)
        for step in node.steps:
            consumed |= _ref_names(step.extra_inputs)
        return consumed
    if isinstance(node, ChainIR):
        return _ref_names((node.first, node.fixed))
    if isinstance(node, AnnotateIR):
        return {node.of} if node.of is not None else set()
    # loop / repeat: the body is a sequential block with local definitions
    local: set[str] = set()
    consumed = set()
    if isinstance(node, LoopIR):
        consumed |= _ref_names((node.init,))
        local.add(node.var)
    for child in node.body:
        consumed |= node_consumes(child) - local
        local |= node_produces(child)
    return consumed - local


def schedule_nodes(graph: GraphSpec) -> tuple[int, ...]:
    """Compute the deterministic topological order of ``graph.nodes``.

    Returns node indices in execution order.

    Raises:
        SpecError: duplicate definitions, a reference that nothing
            defines, or a dependency cycle — each naming the offending
            stage(s).
    """
    defined: dict[str, int] = {}
    for name in (inp.name for inp in graph.inputs):
        if name in defined:
            raise SpecError(f"duplicate input {name!r}")
        defined[name] = -1
    for index, node in enumerate(graph.nodes):
        for name in sorted(node_produces(node)):
            if name in defined:
                raise SpecError(
                    f"value {name!r} is defined more than once",
                    stage=node_label(node))
            defined[name] = index

    # Dangling references fail before the sort so the diagnostic names the
    # consuming stage rather than reporting a bogus cycle.
    dependencies: list[set[int]] = []
    for node in graph.nodes:
        deps: set[int] = set()
        for name in sorted(node_consumes(node)):
            if name not in defined:
                raise SpecError(
                    f"unknown value {name!r}; defined values: "
                    f"{', '.join(sorted(defined))}",
                    stage=node_label(node))
            producer = defined[name]
            if producer >= 0:
                deps.add(producer)
        dependencies.append(deps)

    remaining = {index for index in range(len(graph.nodes))}
    order: list[int] = []
    satisfied: set[int] = set()
    while remaining:
        ready = sorted(index for index in remaining
                       if dependencies[index] <= satisfied)
        if not ready:
            cycle = ", ".join(node_label(graph.nodes[index])
                              for index in sorted(remaining))
            raise SpecError(
                f"dependency cycle among stages: {cycle}")
        index = ready[0]
        order.append(index)
        satisfied.add(index)
        remaining.remove(index)

    if graph.output and graph.output not in defined:
        raise SpecError(
            f"output {graph.output!r} names no input or stage; defined "
            f"values: {', '.join(sorted(defined))}")
    return tuple(order)
