"""Host-op fusion: collapse adjacent host stages into one.

A run of consecutive host stages in which each stage's first operand is
the previous stage's result — and nothing else consumes the intermediate
values — executes as one :class:`~repro.workloads.compiler.ir.FusedStageIR`
instead of materialising a :class:`StageResult` (and a pipeline value) per
op.  MCL's ``inflate → prune → normalize`` triplet is the canonical win:
three host stages per iteration become one.

Fusion rules
============

Two adjacent stages ``S`` then ``T`` fuse iff all of:

* both are host ops (never SpGEMM — accelerator stages must stay visible
  to the cost model) and neither is conditional (``when``);
* ``T``'s *first* operand is ``S``'s result (by stage name or bind);
* ``S``'s result has exactly one consumer in the whole graph — ``T``.
  Consumers include every node's operands (gathers count by template),
  conditional ``else`` aliases, loop ``init``/``update`` wiring,
  annotation probes and the graph output, counted with multiplicity, so
  ``mask(x, x)`` keeps ``x`` alive.

The fused stage keeps the *last* member's name and bind, so loop updates,
annotations and the output reference survive fusion untouched.  Fusion
never changes the functional result — only how many stage records (and
host-side materialisations) the run produces; the fused graph still
passes the checker, and stage kinds render as ``fused(inflate+prune+…)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace

from repro.workloads.compiler.ir import (
    AnnotateIR,
    ChainIR,
    FusedStageIR,
    FusedStep,
    GatherRef,
    GraphSpec,
    LoopIR,
    NodeIR,
    RepeatIR,
    StageIR,
    SPGEMM_OP,
)

__all__ = ["fuse_graph"]


def _count_refs(ref, refs: Counter) -> None:
    refs[ref.template if isinstance(ref, GatherRef) else ref] += 1


def _count_node(node: NodeIR, refs: Counter) -> None:
    if isinstance(node, StageIR):
        for ref in node.inputs:
            _count_refs(ref, refs)
        if node.otherwise is not None:
            refs[node.otherwise] += 1
    elif isinstance(node, FusedStageIR):
        for ref in node.inputs:
            _count_refs(ref, refs)
        for step in node.steps:
            for ref in step.extra_inputs:
                _count_refs(ref, refs)
    elif isinstance(node, ChainIR):
        _count_refs(node.first, refs)
        _count_refs(node.fixed, refs)
    elif isinstance(node, LoopIR):
        _count_refs(node.init, refs)
        refs[node.update] += 1
        for child in node.body:
            _count_node(child, refs)
    elif isinstance(node, RepeatIR):
        for child in node.body:
            _count_node(child, refs)
    elif isinstance(node, AnnotateIR):
        if node.of is not None:
            refs[node.of] += 1


def _reference_counts(graph: GraphSpec) -> Counter:
    refs: Counter = Counter()
    for node in graph.nodes:
        _count_node(node, refs)
    refs[graph.output] += 1
    return refs


def _fusable(node: NodeIR) -> bool:
    return (isinstance(node, StageIR) and node.op != SPGEMM_OP
            and node.when is None)


def _single_consumer(stage: StageIR, refs: Counter) -> bool:
    uses = refs[stage.name] + (refs[stage.bind] if stage.bind else 0)
    return uses == 1


def _continues(run: list[StageIR], node: NodeIR, refs: Counter) -> bool:
    if not _fusable(node) or not node.inputs:
        return False
    previous = run[-1]
    first = node.inputs[0]
    if isinstance(first, GatherRef) \
            or first not in (previous.name, previous.bind):
        return False
    return _single_consumer(previous, refs)


def _emit(run: list[StageIR]) -> NodeIR:
    if len(run) == 1:
        return run[0]
    last = run[-1]
    steps = [FusedStep(run[0].op, (), run[0].params)]
    steps.extend(FusedStep(stage.op, stage.inputs[1:], stage.params)
                 for stage in run[1:])
    return FusedStageIR(name=last.name, inputs=run[0].inputs,
                        steps=tuple(steps), bind=last.bind)


def _fuse_block(nodes: tuple[NodeIR, ...], refs: Counter
                ) -> tuple[NodeIR, ...]:
    fused: list[NodeIR] = []
    run: list[StageIR] = []
    for node in nodes:
        if run and _continues(run, node, refs):
            run.append(node)  # type: ignore[arg-type]
            continue
        if run:
            fused.append(_emit(run))
            run = []
        if _fusable(node):
            run = [node]  # type: ignore[list-item]
        elif isinstance(node, LoopIR):
            fused.append(replace(node, body=_fuse_block(node.body, refs)))
        elif isinstance(node, RepeatIR):
            fused.append(replace(node, body=_fuse_block(node.body, refs)))
        else:
            fused.append(node)
    if run:
        fused.append(_emit(run))
    return tuple(fused)


def fuse_graph(graph: GraphSpec) -> GraphSpec:
    """Return ``graph`` with every fusable host-op run collapsed.

    Idempotent; a graph with nothing to fuse is returned structurally
    equal (``fuse_graph(g) == fuse_graph(fuse_graph(g))``).
    """
    refs = _reference_counts(graph)
    return replace(graph, nodes=_fuse_block(graph.nodes, refs))
