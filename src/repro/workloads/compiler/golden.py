"""Canonical workload-result payloads for golden/parity testing.

``result_payload`` projects a :class:`~repro.workloads.pipeline.
WorkloadResult` onto a deterministic JSON-compatible dict: every stage
record's name/kind/wiring and modelled costs, the workload annotations,
the summary, and a content digest of the output matrix.  Host wall-time
(``host_seconds``) is *excluded* — it is nondeterministic measurement, not
modelled cost, so byte-parity between a compiled spec and its hand-written
build program is well-defined.

``payload_bytes`` serialises the payload with sorted keys and no
whitespace variance; the legacy-parity goldens compare these bytes
directly, and the workloads CLI writes the same payload under ``--json``
(with ``host_seconds`` added back as a separate, explicitly
non-canonical field).
"""

from __future__ import annotations

import hashlib
import json

from repro.workloads.pipeline import StageResult, WorkloadResult

__all__ = ["payload_bytes", "result_payload", "stage_payload"]


def _digest(result: WorkloadResult) -> str | None:
    if result.output is None:
        return None
    matrix = result.output
    parts = hashlib.sha256()
    parts.update(repr(matrix.shape).encode())
    parts.update(matrix.indptr.tobytes())
    parts.update(matrix.indices.tobytes())
    parts.update(matrix.data.tobytes())
    return parts.hexdigest()


def stage_payload(stage: StageResult) -> dict:
    """One stage record as a JSON-compatible dict (costs, no wall-time)."""
    return {
        "name": stage.name,
        "kind": stage.kind,
        "inputs": list(stage.inputs),
        "output_shape": list(stage.output_shape),
        "output_nnz": stage.output_nnz,
        "cycles": stage.cycles,
        "runtime_seconds": stage.runtime_seconds,
        "dram_bytes": stage.dram_bytes,
        "energy_joules": stage.energy_joules,
        "multiplications": stage.multiplications,
        "additions": stage.additions,
    }


def result_payload(result: WorkloadResult, *,
                   host_seconds: bool = False) -> dict:
    """The canonical payload of one workload result.

    Args:
        result: the executed workload.
        host_seconds: include measured host wall-time (total and
            per-stage).  Off by default — wall-time is nondeterministic,
            so the parity goldens must not see it.
    """
    payload = {
        "workload_id": result.workload_id,
        "backend": result.backend,
        "stages": [stage_payload(stage) for stage in result.stages],
        "annotations": dict(result.annotations),
        "summary": result.summary(),
        "output_sha256": _digest(result),
    }
    if host_seconds:
        payload["host_seconds"] = result.total_host_seconds
        for entry, stage in zip(payload["stages"], result.stages):
            entry["host_seconds"] = stage.host_seconds
    return payload


def payload_bytes(result: WorkloadResult) -> bytes:
    """Deterministic serialisation of the canonical payload."""
    return json.dumps(result_payload(result), sort_keys=True,
                      separators=(",", ":")).encode()
