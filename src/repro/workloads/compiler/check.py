"""Shape and sparsity checking of compiled workload graphs.

The checker walks the scheduled nodes once, propagating a symbolic
*value table* — for every named value a pair of dimension symbols plus a
set of structure flags — and rejects ill-formed graphs with stage-named
diagnostics **before any engine runs**.

Dimension symbols
=================

Input dimensions are *rigid*: they stand for whatever the caller passes,
so two different rigid symbols never unify — ``A·A`` on an input not
declared ``square`` is a compile-time error, not a runtime scipy crash.
Dimensions produced by size-changing ops (``aggregation``'s coarse side,
``seed_blocks``'s block count) are *flexible*: they unify with anything,
because their size is a function of parameters the checker does not
evaluate.  Unification is a union-find over symbols; a clash of two rigid
roots is a shape error naming both ends.

Structure flags
===============

The sparsity half of the checker tracks a small flag lattice per value —
``nonnegative``, ``binary``, ``symmetric`` — seeded by input ``assume``
declarations, produced and preserved per op (``simple_graph`` produces all
three, ``spgemm`` preserves nonnegativity, ...).  Ops with domain
requirements declare them: ``inflate`` rejects a possibly-negative operand
at compile time, because the element-wise power of a negative value under
a fractional inflation exponent is NaN by the time the engine would see
it.

Rejected spec classes (each with a ``stage '<name>':`` diagnostic):

1. references to values nothing defines (and dependency cycles — caught
   by the scheduler before the checker runs);
2. unknown host ops / probes / stop probes, and host-op arity or
   parameter-name mismatches (checked against the registered function's
   signature);
3. SpGEMM inner-dimension mismatches, non-square chain operands, loops
   whose carried value changes shape, and conditional stages whose two
   arms disagree in shape;
4. domain violations: an op requiring a nonnegative operand fed a
   possibly-negative value;
5. undeclared parameter references (stages, counts, tolerances) and
   duplicate value definitions.
"""

from __future__ import annotations

import inspect

from repro.workloads.compiler.ir import (
    AnnotateIR,
    ChainIR,
    CounterRef,
    FusedStageIR,
    GatherRef,
    GraphSpec,
    LoopIR,
    NodeIR,
    ParamRef,
    RepeatIR,
    SpecError,
    StageIR,
    SPGEMM_OP,
)
from repro.workloads.compiler.schedule import node_label, schedule_nodes
from repro.workloads.ops import HOST_OPS
from repro.workloads.probes import PROBES, STOP_PROBES

__all__ = ["OpRule", "OP_RULES", "ValueInfo", "check_graph"]

#: Structure flags the checker tracks.
FLAGS = ("nonnegative", "binary", "symmetric")


class OpRule:
    """Shape/flag semantics of one host op.

    Attributes:
        arity: required operand count (``None`` = variadic, at least one).
        shape: ``"same"`` (first operand's shape), ``"same_all"`` (all
            operands must share one shape, result keeps it),
            ``"transpose"`` (swapped dims), ``"narrow"`` (rows kept,
            flexible column count), ``"fresh_square"`` (flexible square).
        requires_square: operand 0 must be square.
        requires: flags every operand must provably carry.
        produces: flags the result is guaranteed to carry.
        preserves: flags kept iff *all* operands carry them.
    """

    def __init__(self, *, arity: int | None = 1, shape: str = "same",
                 requires_square: bool = False,
                 requires: tuple[str, ...] = (),
                 produces: tuple[str, ...] = (),
                 preserves: tuple[str, ...] = ()) -> None:
        self.arity = arity
        self.shape = shape
        self.requires_square = requires_square
        self.requires = requires
        self.produces = produces
        self.preserves = preserves


#: Shape/flag rules for the built-in host-op vocabulary.  Ops registered
#: by downstream users without a rule here default to ``OpRule(arity=None,
#: shape="fresh")`` — any operands, unconstrained result.
OP_RULES: dict[str, OpRule] = {
    "mask": OpRule(arity=2, shape="same_all",
                   preserves=("nonnegative", "binary", "symmetric")),
    "normalize_columns": OpRule(preserves=("nonnegative",)),
    "normalize_rows": OpRule(preserves=("nonnegative",)),
    "inflate": OpRule(requires=("nonnegative",),
                      preserves=("nonnegative",)),
    "prune": OpRule(preserves=("nonnegative", "binary")),
    "binarize": OpRule(produces=("nonnegative", "binary"),
                       preserves=("symmetric",)),
    "transpose": OpRule(shape="transpose",
                        preserves=("nonnegative", "binary", "symmetric")),
    "simple_graph": OpRule(requires_square=True,
                           produces=("nonnegative", "binary", "symmetric")),
    "mcl_setup": OpRule(requires_square=True, produces=("nonnegative",)),
    "aggregation": OpRule(shape="narrow",
                          produces=("nonnegative", "binary")),
    "tril": OpRule(preserves=("nonnegative", "binary")),
    "sample_neighbors": OpRule(preserves=("nonnegative", "binary")),
    "damp": OpRule(arity=2, shape="same_all",
                   requires=("nonnegative",), preserves=("nonnegative",)),
    "uniform_column": OpRule(shape="narrow", produces=("nonnegative",)),
    "extract_block": OpRule(shape="fresh_square", requires_square=True,
                            preserves=("nonnegative", "binary",
                                       "symmetric")),
    "stack_blocks": OpRule(arity=None, shape="fresh_square",
                           preserves=("nonnegative", "binary")),
}

_DEFAULT_RULE = OpRule(arity=None, shape="fresh")


class ValueInfo:
    """Symbolic shape (two dimension symbols) and structure flags."""

    __slots__ = ("rows", "cols", "flags")

    def __init__(self, rows: int, cols: int, flags: frozenset[str]) -> None:
        self.rows = rows
        self.cols = cols
        self.flags = flags


class _Dims:
    """Union-find over dimension symbols with rigid/flexible roots."""

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._label: list[str | None] = []  # rigid iff label is not None

    def rigid(self, label: str) -> int:
        self._parent.append(len(self._parent))
        self._label.append(label)
        return len(self._parent) - 1

    def flexible(self) -> int:
        self._parent.append(len(self._parent))
        self._label.append(None)
        return len(self._parent) - 1

    def find(self, symbol: int) -> int:
        while self._parent[symbol] != symbol:
            self._parent[symbol] = self._parent[self._parent[symbol]]
            symbol = self._parent[symbol]
        return symbol

    def label(self, symbol: int) -> str | None:
        return self._label[self.find(symbol)]

    def unify(self, left: int, right: int, *, stage: str,
              context: str) -> None:
        """Merge two symbols; two distinct rigid roots are a shape error."""
        root_l, root_r = self.find(left), self.find(right)
        if root_l == root_r:
            return
        label_l, label_r = self._label[root_l], self._label[root_r]
        if label_l is not None and label_r is not None:
            raise SpecError(
                f"shape mismatch — {context}: {label_l} vs {label_r} "
                "(declare the inputs square, or fix the operand order)",
                stage=stage)
        # Keep the rigid root (its label carries the better diagnostic).
        if label_l is None:
            root_l, root_r = root_r, root_l
        self._parent[root_r] = root_l

    def same(self, left: int, right: int) -> bool:
        return self.find(left) == self.find(right)


class _Checker:
    def __init__(self, graph: GraphSpec) -> None:
        self.graph = graph
        self.dims = _Dims()
        self.params = {param.name for param in graph.params}
        self.values: dict[str, ValueInfo] = {}
        self.counters: list[str] = []

    # ------------------------------------------------------------------
    def run(self, order: tuple[int, ...]) -> None:
        for inp in self.graph.inputs:
            if inp.square:
                rows = cols = self.dims.rigid(f"dimension of input "
                                              f"{inp.name!r}")
            else:
                rows = self.dims.rigid(f"rows of input {inp.name!r}")
                cols = self.dims.rigid(f"columns of input {inp.name!r}")
            for flag in inp.assume:
                if flag not in FLAGS:
                    raise SpecError(
                        f"input {inp.name!r} assumes unknown flag "
                        f"{flag!r}; known flags: {', '.join(FLAGS)}")
            self.values[inp.name] = ValueInfo(rows, cols,
                                              frozenset(inp.assume))
        for index in order:
            self._check_node(self.graph.nodes[index])
        # The scheduler guarantees the output name is defined; a gather
        # template is not addressable as a single output value though.
        if self.graph.output in self.values:
            return
        raise SpecError(
            f"output {self.graph.output!r} is not a single value "
            "(repeated stages are only addressable through gathers)")

    # ------------------------------------------------------------------
    def _scalar_ok(self, value, *, stage: str) -> None:
        if isinstance(value, ParamRef):
            if value.name not in self.params:
                raise SpecError(
                    f"references undeclared parameter {value.name!r}; "
                    f"declared parameters: "
                    f"{', '.join(sorted(self.params)) or '(none)'}",
                    stage=stage)
        elif isinstance(value, CounterRef):
            if value.name not in self.counters:
                raise SpecError(
                    f"references counter {value.name!r} outside its "
                    "loop/repeat", stage=stage)

    def _resolve(self, ref, *, stage: str) -> ValueInfo:
        name = ref.template if isinstance(ref, GatherRef) else ref
        if isinstance(ref, GatherRef):
            self._scalar_ok(ref.count, stage=stage)
        try:
            return self.values[name]
        except KeyError:
            raise SpecError(
                f"unknown value {name!r}; defined values: "
                f"{', '.join(sorted(self.values))}", stage=stage) from None

    def _define(self, name: str, info: ValueInfo, *, stage: str) -> None:
        if name in self.values:
            raise SpecError(f"value {name!r} is defined more than once",
                            stage=stage)
        self.values[name] = info

    # ------------------------------------------------------------------
    def _check_node(self, node: NodeIR) -> None:
        if isinstance(node, StageIR):
            self._check_stage(node)
        elif isinstance(node, FusedStageIR):
            self._check_fused(node)
        elif isinstance(node, ChainIR):
            self._check_chain(node)
        elif isinstance(node, LoopIR):
            self._check_loop(node)
        elif isinstance(node, RepeatIR):
            self._check_repeat(node)
        else:
            self._check_annotate(node)

    # ------------------------------------------------------------------
    def _apply_op(self, stage: str, op: str,
                  operands: list[ValueInfo],
                  params: tuple[tuple[str, object], ...],
                  variadic: bool) -> ValueInfo:
        """Shared spgemm/host-op shape+flag application."""
        if op == SPGEMM_OP:
            if len(operands) != 2:
                raise SpecError(
                    f"spgemm takes exactly 2 operands, got {len(operands)}",
                    stage=stage)
            left, right = operands
            self.dims.unify(left.cols, right.rows, stage=stage,
                            context="SpGEMM inner dimensions must agree")
            flags = frozenset({"nonnegative"} & left.flags & right.flags)
            return ValueInfo(left.rows, right.cols, flags)

        try:
            fn = HOST_OPS[op]
        except KeyError:
            raise SpecError(
                f"unknown host op {op!r}; registered ops: "
                f"{', '.join(sorted(HOST_OPS))}", stage=stage) from None
        rule = OP_RULES.get(op, _DEFAULT_RULE)
        if rule.arity is not None and not variadic \
                and len(operands) != rule.arity:
            raise SpecError(
                f"host op {op!r} takes {rule.arity} operand(s), got "
                f"{len(operands)}", stage=stage)
        if not operands:
            raise SpecError(f"host op {op!r} needs at least one operand",
                            stage=stage)
        if not variadic:
            self._check_signature(stage, op, fn, len(operands), params)
        if rule.requires_square:
            self.dims.unify(operands[0].rows, operands[0].cols, stage=stage,
                            context=f"host op {op!r} requires a square "
                                    "operand")
        for flag in rule.requires:
            for operand in operands:
                if flag not in operand.flags:
                    raise SpecError(
                        f"host op {op!r} requires a {flag} operand, but "
                        "the value may not be (declare the input with "
                        f"assume: ['{flag}'] or produce it with an op "
                        "that guarantees it)", stage=stage)
        if rule.shape == "same_all":
            base = operands[0]
            for other in operands[1:]:
                self.dims.unify(base.rows, other.rows, stage=stage,
                                context=f"host op {op!r} operands must "
                                        "share a shape")
                self.dims.unify(base.cols, other.cols, stage=stage,
                                context=f"host op {op!r} operands must "
                                        "share a shape")
        first = operands[0]
        if rule.shape in ("same", "same_all"):
            shape = (first.rows, first.cols)
        elif rule.shape == "transpose":
            shape = (first.cols, first.rows)
        elif rule.shape == "narrow":
            shape = (first.rows, self.dims.flexible())
        elif rule.shape == "fresh_square":
            fresh = self.dims.flexible()
            shape = (fresh, fresh)
        else:  # "fresh"
            shape = (self.dims.flexible(), self.dims.flexible())
        flags = set(rule.produces)
        for flag in rule.preserves:
            if all(flag in operand.flags for operand in operands):
                flags.add(flag)
        if rule.shape == "transpose" and "symmetric" in first.flags:
            flags.add("symmetric")
        return ValueInfo(shape[0], shape[1], frozenset(flags))

    def _check_signature(self, stage: str, op: str, fn, num_operands: int,
                         params: tuple[tuple[str, object], ...]) -> None:
        """Bind operands and params against the op's real signature."""
        placeholders = [object()] * num_operands
        keywords = {}
        for key, value in params:
            self._scalar_ok(value, stage=stage)
            keywords[key] = value
        try:
            inspect.signature(fn).bind(*placeholders, **keywords)
        except TypeError as exc:
            raise SpecError(
                f"host op {op!r} cannot take {num_operands} operand(s) "
                f"with params ({', '.join(keywords) or 'none'}): {exc}; "
                f"signature is {op}{inspect.signature(fn)}",
                stage=stage) from None

    # ------------------------------------------------------------------
    def _check_stage(self, node: StageIR) -> None:
        operands = []
        variadic = False
        for ref in node.inputs:
            info = self._resolve(ref, stage=node.name)
            if isinstance(ref, GatherRef):
                variadic = True
            operands.append(info)
        info = self._apply_op(node.name, node.op, operands, node.params,
                              variadic)
        if node.when is not None:
            if node.when not in self.params:
                raise SpecError(
                    f"condition references undeclared parameter "
                    f"{node.when!r}", stage=node.name)
            if node.otherwise is None:
                raise SpecError(
                    "a conditional stage needs an 'else' value to alias "
                    "when the condition is false", stage=node.name)
            other = self._resolve(node.otherwise, stage=node.name)
            self.dims.unify(info.rows, other.rows, stage=node.name,
                            context="a conditional stage and its 'else' "
                                    "value must share a shape")
            self.dims.unify(info.cols, other.cols, stage=node.name,
                            context="a conditional stage and its 'else' "
                                    "value must share a shape")
            info = ValueInfo(info.rows, info.cols,
                             info.flags & other.flags)
        self._define(node.name, info, stage=node.name)
        if node.bind:
            self._define(node.bind, info, stage=node.name)

    def _check_fused(self, node: FusedStageIR) -> None:
        operands = [self._resolve(ref, stage=node.name)
                    for ref in node.inputs]
        if not node.steps:
            raise SpecError("a fused stage needs at least one step",
                            stage=node.name)
        info = self._apply_op(node.name, node.steps[0].op, operands,
                              node.steps[0].params, False)
        for step in node.steps[1:]:
            extras = [self._resolve(ref, stage=node.name)
                      for ref in step.extra_inputs]
            info = self._apply_op(node.name, step.op, [info] + extras,
                                  step.params, False)
        self._define(node.name, info, stage=node.name)
        if node.bind:
            self._define(node.bind, info, stage=node.name)

    def _check_chain(self, node: ChainIR) -> None:
        self._scalar_ok(node.count, stage=node.template)
        first = self._resolve(node.first, stage=node.template)
        fixed = self._resolve(node.fixed, stage=node.template)
        self.dims.unify(fixed.rows, fixed.cols, stage=node.template,
                        context="a chain's fixed operand must be square "
                                "for the product to iterate")
        if node.thread == "left":
            self.dims.unify(first.cols, fixed.rows, stage=node.template,
                            context="SpGEMM inner dimensions must agree")
            shape = (first.rows, fixed.cols)
        else:
            self.dims.unify(fixed.cols, first.rows, stage=node.template,
                            context="SpGEMM inner dimensions must agree")
            shape = (fixed.rows, first.cols)
        flags = frozenset({"nonnegative"} & first.flags & fixed.flags)
        info = ValueInfo(shape[0], shape[1], flags)
        self._define(node.template, info, stage=node.template)
        self._define(node.bind, info, stage=node.template)

    def _check_loop(self, node: LoopIR) -> None:
        label = node_label(node)
        self._scalar_ok(node.max_iterations, stage=label)
        init = self._resolve(node.init, stage=label)
        init_square = self.dims.same(init.rows, init.cols)

        # Two-pass flag fixpoint: assume the carry keeps the init flags,
        # re-check with the intersection if the body weakens them.
        assumed = init.flags
        for _ in range(2):
            saved_values = dict(self.values)
            if init_square:
                rows = cols = self.dims.rigid(
                    f"dimension of carried value {node.var!r}")
            else:
                rows, cols = init.rows, init.cols
            self.values[node.var] = ValueInfo(rows, cols, assumed)
            self.counters.append(node.counter)
            try:
                for child in node.body:
                    self._check_node(child)
                if node.update not in self.values:
                    raise SpecError(
                        f"update {node.update!r} names no body value",
                        stage=label)
                update = self.values[node.update]
                if init_square:
                    self.dims.unify(update.rows, update.cols, stage=label,
                                    context="the carried value must stay "
                                            "square across iterations")
                else:
                    self.dims.unify(update.rows, rows, stage=label,
                                    context="the carried value must keep "
                                            "its shape across iterations")
                    self.dims.unify(update.cols, cols, stage=label,
                                    context="the carried value must keep "
                                            "its shape across iterations")
            finally:
                self.counters.pop()
                self.values = saved_values
            if update.flags >= assumed:
                break
            assumed = assumed & update.flags

        if node.stop is not None:
            self._scalar_ok(node.stop.tolerance, stage=label)
            if node.stop.probe not in STOP_PROBES:
                raise SpecError(
                    f"unknown stop probe {node.stop.probe!r}; known stop "
                    f"probes: {', '.join(sorted(STOP_PROBES))}",
                    stage=label)
        # Post-loop: the carry's size is iteration-dependent unless the
        # body provably preserves it; keep it square when it started so.
        if init_square:
            final = self.dims.flexible()
            info = ValueInfo(final, final, assumed & update.flags)
        else:
            info = ValueInfo(init.rows, init.cols, assumed & update.flags)
        self._define(node.var, info, stage=label)

    def _check_repeat(self, node: RepeatIR) -> None:
        label = node_label(node)
        self._scalar_ok(node.count, stage=label)
        self.counters.append(node.counter)
        try:
            for child in node.body:
                self._check_node(child)
        finally:
            self.counters.pop()

    def _check_annotate(self, node: AnnotateIR) -> None:
        label = node_label(node)
        if node.param is not None:
            if node.param not in self.params:
                raise SpecError(
                    f"annotates undeclared parameter {node.param!r}",
                    stage=label)
            return
        if node.probe is None or node.of is None:
            raise SpecError("an annotation needs either param= or "
                            "probe=/of=", stage=label)
        if node.probe not in PROBES:
            raise SpecError(
                f"unknown probe {node.probe!r}; known probes: "
                f"{', '.join(sorted(PROBES))}", stage=label)
        for _, value in node.params:
            self._scalar_ok(value, stage=label)
        self._resolve(node.of, stage=label)


def check_graph(graph: GraphSpec) -> tuple[int, ...]:
    """Schedule and type-check one graph spec.

    Returns the node execution order (see
    :func:`~repro.workloads.compiler.schedule.schedule_nodes`).

    Raises:
        SpecError: any of the rejected spec classes in the module
            docstring, with a stage-named diagnostic.
    """
    if not graph.inputs:
        raise SpecError("a workload graph needs at least one input")
    if not graph.output:
        raise SpecError("a workload graph needs an output value")
    order = schedule_nodes(graph)
    _Checker(graph).run(order)
    return order
