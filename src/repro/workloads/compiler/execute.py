"""Execution of compiled workload graphs on a pipeline builder.

This is the lowering half of the compiler: a checked
:class:`~repro.workloads.compiler.ir.GraphSpec` plus its schedule runs
against the *same* :class:`~repro.workloads.pipeline.PipelineBuilder` the
hand-written build programs used — SpGEMM nodes dispatch through the
builder's stage executor (engine registry / ExperimentRunner memo, same
fingerprints as sweeps and serving) and host nodes through the ops
registry.  Compiled and legacy workloads therefore share one execution
path, one stage-record schema and one cost model; the byte-parity goldens
pin that the five re-expressed legacy workloads produce identical
payloads.

Name handling: spec-level value names are mapped to pipeline value names
through an environment (conditional stages alias instead of executing;
loop variables rebind each iteration).  Stage names inside loop/repeat
bodies may carry counter placeholders (``inflate[{i}]``) formatted with
the live counter values, reproducing the hand-written naming scheme
(``inflate[3]``) exactly.
"""

from __future__ import annotations

import string

import scipy.sparse as sp

from repro.workloads.compiler.ir import (
    AnnotateIR,
    ChainIR,
    CounterRef,
    FusedStageIR,
    GatherRef,
    GraphSpec,
    LoopIR,
    NodeIR,
    ParamRef,
    RepeatIR,
    SpecError,
    StageIR,
    SPGEMM_OP,
)
from repro.workloads.compiler.schedule import node_label
from repro.workloads.pipeline import PipelineBuilder
from repro.workloads.probes import get_probe, get_stop_probe

__all__ = ["execute_graph"]


def _placeholders(template: str) -> tuple[str, ...]:
    return tuple(field for _, field, _, _ in
                 string.Formatter().parse(template) if field)


def _format_name(name: str, counters: dict[str, int], *,
                 stage: str) -> str:
    if "{" not in name:
        return name
    try:
        return name.format(**counters)
    except (KeyError, IndexError):
        raise SpecError(
            f"stage name {name!r} references counters outside their "
            f"loop/repeat (live counters: "
            f"{', '.join(counters) or '(none)'})", stage=stage) from None


class _Execution:
    def __init__(self, pipeline: PipelineBuilder, params: dict) -> None:
        self.pipeline = pipeline
        self.params = params

    # ------------------------------------------------------------------
    def scalar(self, value, counters: dict[str, int]):
        if isinstance(value, ParamRef):
            resolved = self.params[value.name]
            return resolved + value.offset if value.offset else resolved
        if isinstance(value, CounterRef):
            return counters[value.name]
        return value

    def resolve(self, ref, env: dict[str, str],
                counters: dict[str, int], *, stage: str) -> list[str]:
        """One reference to a list of pipeline value names (gathers fan
        out to every repeated instance)."""
        if isinstance(ref, GatherRef):
            count = int(self.scalar(ref.count, counters))
            fields = _placeholders(ref.template)
            return [ref.template.format(**{field: index
                                           for field in fields})
                    for index in range(ref.start, ref.start + count)]
        try:
            return [env[ref]]
        except KeyError:
            raise SpecError(
                f"unknown value {ref!r}; defined values: "
                f"{', '.join(sorted(env))}", stage=stage) from None

    def operands(self, refs, env, counters, *, stage: str) -> list[str]:
        names: list[str] = []
        for ref in refs:
            names.extend(self.resolve(ref, env, counters, stage=stage))
        return names

    # ------------------------------------------------------------------
    def run(self, node: NodeIR, env: dict[str, str],
            counters: dict[str, int]) -> None:
        if isinstance(node, StageIR):
            self._run_stage(node, env, counters)
        elif isinstance(node, FusedStageIR):
            self._run_fused(node, env, counters)
        elif isinstance(node, ChainIR):
            self._run_chain(node, env, counters)
        elif isinstance(node, LoopIR):
            self._run_loop(node, env, counters)
        elif isinstance(node, RepeatIR):
            self._run_repeat(node, env, counters)
        else:
            self._run_annotate(node, env, counters)

    def _bind(self, node, env: dict[str, str], value: str) -> None:
        env[node.name] = value
        if node.bind:
            env[node.bind] = value

    def _run_stage(self, node: StageIR, env, counters) -> None:
        if node.when is not None and not self.params[node.when]:
            alias = self.resolve(node.otherwise, env, counters,
                                 stage=node.name)[0]
            self._bind(node, env, alias)
            return
        name = _format_name(node.name, counters, stage=node.name)
        inputs = self.operands(node.inputs, env, counters, stage=node.name)
        if node.op == SPGEMM_OP:
            result = self.pipeline.spgemm(name, inputs[0], inputs[1])
        else:
            kwargs = {key: self.scalar(value, counters)
                      for key, value in node.params}
            result = self.pipeline.host(name, node.op, *inputs, **kwargs)
        self._bind(node, env, result)

    def _run_fused(self, node: FusedStageIR, env, counters) -> None:
        name = _format_name(node.name, counters, stage=node.name)
        inputs = self.operands(node.inputs, env, counters, stage=node.name)
        steps = []
        for step in node.steps:
            extras = self.operands(step.extra_inputs, env, counters,
                                   stage=node.name)
            kwargs = {key: self.scalar(value, counters)
                      for key, value in step.params}
            steps.append((step.op, tuple(extras), kwargs))
        result = self.pipeline.host_fused(name, steps, *inputs)
        self._bind(node, env, result)

    def _run_chain(self, node: ChainIR, env, counters) -> None:
        label = node_label(node)
        previous = self.resolve(node.first, env, counters, stage=label)[0]
        fixed = self.resolve(node.fixed, env, counters, stage=label)[0]
        count = int(self.scalar(node.count, counters))
        for step in range(node.start, node.start + count):
            name = _format_name(node.template,
                                {**counters, "step": step}, stage=label)
            if node.thread == "left":
                previous = self.pipeline.spgemm(name, previous, fixed)
            else:
                previous = self.pipeline.spgemm(name, fixed, previous)
        env[node.template] = previous
        env[node.bind] = previous

    def _run_loop(self, node: LoopIR, env, counters) -> None:
        label = node_label(node)
        current = self.resolve(node.init, env, counters, stage=label)[0]
        count = int(self.scalar(node.max_iterations, counters))
        stop_fn = tolerance = None
        if node.stop is not None:
            stop_fn = get_stop_probe(node.stop.probe, stage=label)
            tolerance = self.scalar(node.stop.tolerance, counters)
        iterations = 0
        converged = False
        for trip in range(node.counter_start, node.counter_start + count):
            iterations = trip
            scope = dict(env)
            scope[node.var] = current
            inner = {**counters, node.counter: trip}
            for child in node.body:
                self.run(child, scope, inner)
            try:
                updated = scope[node.update]
            except KeyError:
                raise SpecError(
                    f"update {node.update!r} names no body value",
                    stage=label) from None
            if stop_fn is not None:
                reading = stop_fn(self.pipeline.scipy_value(updated),
                                  self.pipeline.scipy_value(current))
                current = updated
                if reading < tolerance:
                    converged = True
                    break
            else:
                current = updated
        env[node.var] = current
        if node.iterations_key is not None:
            self.pipeline.annotate(node.iterations_key, iterations)
        if node.converged_key is not None:
            self.pipeline.annotate(node.converged_key, converged)

    def _run_repeat(self, node: RepeatIR, env, counters) -> None:
        count = int(self.scalar(node.count, counters))
        for instance in range(node.start, node.start + count):
            scope = dict(env)
            inner = {**counters, node.counter: instance}
            for child in node.body:
                self.run(child, scope, inner)
            # Instances are addressed downstream through gathers over the
            # formatted stage names; the scope itself is instance-local.
            for name, value in scope.items():
                if name not in env and "{" not in name:
                    env[name] = value

    def _run_annotate(self, node: AnnotateIR, env, counters) -> None:
        if node.param is not None:
            self.pipeline.annotate(node.key, self.params[node.param])
            return
        probe = get_probe(node.probe, stage=node_label(node))
        kwargs = {key: self.scalar(value, counters)
                  for key, value in node.params}
        value: sp.csr_matrix = self.pipeline.scipy_value(
            self.resolve(node.of, env, counters,
                         stage=node_label(node))[0])
        self.pipeline.annotate(node.key, probe(value, **kwargs))


def execute_graph(graph: GraphSpec, order: tuple[int, ...],
                  pipeline: PipelineBuilder, params: dict) -> str:
    """Run one checked graph on ``pipeline`` with resolved ``params``.

    Returns the pipeline value name of the graph's output (pass it to
    :meth:`PipelineBuilder.result`).

    Raises:
        ValueError: an input declared ``square`` is not (same message the
            hand-written build programs raised).
    """
    env: dict[str, str] = {}
    for inp in graph.inputs:
        env[inp.name] = inp.name
        if inp.square:
            shape = pipeline.shape(inp.name)
            if shape[0] != shape[1]:
                raise ValueError(
                    f"adjacency matrix must be square, got {shape}")
    execution = _Execution(pipeline, params)
    for index in order:
        execution.run(graph.nodes[index], env, {})
    try:
        return env[graph.output]
    except KeyError:
        raise SpecError(
            f"output {graph.output!r} names no input or stage; defined "
            f"values: {', '.join(sorted(env))}") from None
