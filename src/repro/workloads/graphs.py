"""The registered workloads' declarative graph specs.

Every workload in the registry ships as a compiled spec — the five legacy
pipelines re-expressed through the compiler front end (golden-proven
byte-identical to their original hand-written build programs) plus five
new families that exist *only* as specs.  Straight-line pipelines use the
expression language; workloads with loops, repeats or threaded chains use
the JSON stage-graph form — together the registry exercises every front
end and every IR node kind.

Legacy, re-expressed (byte-parity pinned in
``tests/workloads/test_compiler_parity.py``):

* ``triangles`` — ``(A·A) ⊙ A`` with optional simple-graph normalisation.
* ``mcl``       — expansion chain + inflate/prune/normalise loop with the
                  chaos stop probe.
* ``khop``      — the ``A^k`` power chain.
* ``galerkin``  — the ``R·A·P`` triple product.
* ``cosine``    — thresholded ``Â·Âᵀ`` similarity self-join.

New families (scipy-golden-tested in
``tests/workloads/test_new_workloads.py``):

* ``pagerank``   — power iteration ``r ← α·M·r + (1−α)/n`` with a
                   ``delta_max`` convergence stop.
* ``gnn_sample`` — GNN neighbourhood sampling: deterministic per-row
                   fanout capping, then ``layers`` right-threaded
                   propagation SpGEMMs.
* ``amg_vcycle`` — repeated Galerkin coarsening until the operator is
                   small enough (a full V-cycle's setup sweep).
* ``tri_enum``   — masked triangle enumeration on the strict lower
                   triangle (``(L·L) ⊙ L`` lists each triangle once).
* ``serve_mix``  — a batched small-SpGEMM serving mix: block-partition,
                   one product per block, block-diagonal gather.
"""

from __future__ import annotations

from repro.workloads.compiler import (
    CompiledWorkload,
    compile_expression,
    compile_graph,
)

__all__ = ["COMPILED", "EXPRESSION_SOURCES", "GRAPH_SOURCES",
           "compiled_workload"]

#: Expression-language sources (straight-line pipelines).
EXPRESSION_SOURCES: dict[str, str] = {
    "triangles": """
        workload triangles
        input A square
        param normalize = true
        adjacency = simple_graph(A) when normalize else A
        a_squared = adjacency · adjacency
        masked = a_squared ⊙ adjacency
        annotate triangles = triangles_total(masked)
        annotate wedges = wedges(adjacency)
        output masked
    """,
    "khop": """
        workload khop
        input A square
        param k = 3 min 2
        param normalize = true
        adjacency = simple_graph(A) when normalize else A
        power = adjacency ^ k
        annotate k = param k
        annotate total_walks = matrix_sum(power)
        output power
    """,
    "galerkin": """
        workload galerkin
        input A square
        param group_size = 4 min 1
        prolongator = aggregation(A, group_size=group_size)
        restriction = prolongator'
        AP = A · prolongator
        RAP = restriction · AP
        annotate coarse_rows = rows(RAP)
        annotate coarse_nnz = nnz(RAP)
        output RAP
    """,
    "cosine": """
        workload cosine
        input A
        param threshold = 0.2
        row_normalized = normalize_rows(A)
        transposed = row_normalized'
        similarity = row_normalized · transposed
        thresholded = prune(similarity, threshold=threshold)
        annotate similar_pairs = off_diagonal_pairs(thresholded)
        output thresholded
    """,
    "tri_enum": """
        workload tri_enum
        input A square
        lower = tril(simple_graph(A))
        wedge = lower · lower
        tri = wedge ⊙ lower
        annotate triangles = matrix_sum(tri)
        annotate edges = nnz(lower)
        output tri
    """,
}

#: JSON stage-graph sources (loops, repeats, threaded chains).
GRAPH_SOURCES: dict[str, dict] = {
    "mcl": {
        "workload": "mcl",
        "inputs": [{"name": "A", "square": True}],
        "params": [
            {"name": "expansion", "default": 2, "min": 2},
            {"name": "inflation", "default": 2.0, "above": 1},
            {"name": "prune_threshold", "default": 1e-4},
            {"name": "max_iterations", "default": 30},
            {"name": "tolerance", "default": 1e-6},
            {"name": "add_self_loops", "default": True},
        ],
        "nodes": [
            {"stage": "setup", "op": "mcl_setup", "inputs": ["A"],
             "params": {"add_self_loops": {"param": "add_self_loops"}}},
            {"loop": {
                "var": "current",
                "init": "setup",
                "counter": "i",
                "max_iterations": {"param": "max_iterations"},
                "update": "next",
                "stop": {"probe": "chaos",
                         "tolerance": {"param": "tolerance"}},
                "iterations_key": "iterations",
                "converged_key": "converged",
                "body": [
                    {"chain": "expand[{i}.{step}]", "first": "current",
                     "fixed": "current",
                     "count": {"param": "expansion", "offset": -1},
                     "bind": "expanded"},
                    {"stage": "inflate[{i}]", "op": "inflate",
                     "inputs": ["expanded"],
                     "params": {"power": {"param": "inflation"}},
                     "bind": "inflated"},
                    {"stage": "prune[{i}]", "op": "prune",
                     "inputs": ["inflated"],
                     "params": {"threshold": {"param": "prune_threshold"}},
                     "bind": "pruned"},
                    {"stage": "normalize[{i}]", "op": "normalize_columns",
                     "inputs": ["pruned"], "bind": "next"},
                ],
            }},
        ],
        "output": "current",
    },
    "pagerank": {
        "workload": "pagerank",
        "inputs": [{"name": "A", "square": True}],
        "params": [
            {"name": "alpha", "default": 0.85, "above": 0},
            {"name": "max_iterations", "default": 50, "min": 1},
            {"name": "tolerance", "default": 1e-8},
        ],
        "nodes": [
            {"stage": "adjacency", "op": "simple_graph", "inputs": ["A"]},
            {"stage": "stochastic", "op": "normalize_columns",
             "inputs": ["adjacency"]},
            {"stage": "seed", "op": "uniform_column",
             "inputs": ["stochastic"]},
            {"loop": {
                "var": "rank",
                "init": "seed",
                "counter": "t",
                "max_iterations": {"param": "max_iterations"},
                "update": "next",
                "stop": {"probe": "delta_max",
                         "tolerance": {"param": "tolerance"}},
                "iterations_key": "iterations",
                "converged_key": "converged",
                "body": [
                    {"stage": "spread[{t}]", "op": "spgemm",
                     "inputs": ["stochastic", "rank"], "bind": "spread"},
                    {"stage": "damp[{t}]", "op": "damp",
                     "inputs": ["spread", "seed"],
                     "params": {"alpha": {"param": "alpha"}},
                     "bind": "next"},
                ],
            }},
            {"annotate": "rank_sum", "probe": "matrix_sum", "of": "rank"},
        ],
        "output": "rank",
    },
    "gnn_sample": {
        "workload": "gnn_sample",
        "inputs": [{"name": "A", "square": True}],
        "params": [
            {"name": "fanout", "default": 3, "min": 1},
            {"name": "layers", "default": 2, "min": 1},
        ],
        "nodes": [
            {"stage": "adjacency", "op": "simple_graph", "inputs": ["A"]},
            {"stage": "sampled", "op": "sample_neighbors",
             "inputs": ["adjacency"],
             "params": {"fanout": {"param": "fanout"}}},
            {"stage": "features", "op": "normalize_rows", "inputs": ["A"]},
            {"chain": "hop[{step}]", "first": "features",
             "fixed": "sampled", "count": {"param": "layers"},
             "bind": "embedded", "thread": "right", "start": 1},
            {"annotate": "sampled_edges", "probe": "nnz", "of": "sampled"},
            {"annotate": "embedding_nnz", "probe": "nnz",
             "of": "embedded"},
        ],
        "output": "embedded",
    },
    "amg_vcycle": {
        "workload": "amg_vcycle",
        "inputs": [{"name": "A", "square": True}],
        "params": [
            {"name": "group_size", "default": 4, "min": 1},
            {"name": "max_levels", "default": 3, "min": 1},
            {"name": "coarse_rows", "default": 16, "min": 1},
        ],
        "nodes": [
            {"loop": {
                "var": "operator",
                "init": "A",
                "counter": "l",
                "max_iterations": {"param": "max_levels"},
                "update": "coarse",
                "stop": {"probe": "rows_below",
                         "tolerance": {"param": "coarse_rows"}},
                "iterations_key": "levels",
                "converged_key": "reached_coarse",
                "body": [
                    {"stage": "P[{l}]", "op": "aggregation",
                     "inputs": ["operator"],
                     "params": {"group_size": {"param": "group_size"}},
                     "bind": "P"},
                    {"stage": "R[{l}]", "op": "transpose",
                     "inputs": ["P"], "bind": "R"},
                    {"stage": "AP[{l}]", "op": "spgemm",
                     "inputs": ["operator", "P"], "bind": "AP"},
                    {"stage": "RAP[{l}]", "op": "spgemm",
                     "inputs": ["R", "AP"], "bind": "coarse"},
                ],
            }},
            {"annotate": "coarse_rows", "probe": "rows", "of": "operator"},
            {"annotate": "coarse_nnz", "probe": "nnz", "of": "operator"},
        ],
        "output": "operator",
    },
    "serve_mix": {
        "workload": "serve_mix",
        "inputs": [{"name": "A", "square": True}],
        "params": [
            {"name": "batch", "default": 4, "min": 1},
        ],
        "nodes": [
            {"repeat": {
                "counter": "j",
                "count": {"param": "batch"},
                "body": [
                    {"stage": "tile[{j}]", "op": "extract_block",
                     "inputs": ["A"],
                     "params": {"index": {"counter": "j"},
                                "count": {"param": "batch"}}},
                    {"stage": "product[{j}]", "op": "spgemm",
                     "inputs": ["tile[{j}]", "tile[{j}]"]},
                ],
            }},
            {"stage": "stacked", "op": "stack_blocks",
             "inputs": [{"all": "product[{j}]",
                         "count": {"param": "batch"}}]},
            {"annotate": "batches", "param": "batch"},
            {"annotate": "stacked_nnz", "probe": "nnz", "of": "stacked"},
        ],
        "output": "stacked",
    },
}


def _compile_all() -> dict[str, CompiledWorkload]:
    compiled = {}
    for workload_id, source in EXPRESSION_SOURCES.items():
        compiled[workload_id] = compile_expression(source)
    for workload_id, payload in GRAPH_SOURCES.items():
        compiled[workload_id] = compile_graph(payload)
    for workload_id, workload in compiled.items():
        assert workload.name == workload_id, \
            f"spec {workload_id!r} declares workload {workload.name!r}"
    return compiled


#: Every registered workload's compiled spec, by id.
COMPILED: dict[str, CompiledWorkload] = _compile_all()


def compiled_workload(workload_id: str) -> CompiledWorkload:
    """The compiled spec of one registered workload."""
    try:
        return COMPILED[workload_id]
    except KeyError:
        raise KeyError(
            f"no compiled spec for workload {workload_id!r}; compiled "
            f"specs: {', '.join(sorted(COMPILED))}"
        ) from None
