"""Annotation and loop-stop probes for compiled workload graphs.

Hand-written build programs computed workload-level scalars (triangle
counts, walk totals, convergence measures) inline with ordinary Python.
Compiled graph specs stay declarative by naming *probes* instead:

* **annotation probes** — pure functions from one ``scipy.sparse`` CSR
  value (plus scalar keyword parameters) to one float, recorded via
  :class:`~repro.workloads.compiler.ir.AnnotateIR`;
* **stop probes** — functions of ``(current, previous)`` carried loop
  values whose reading is compared against a tolerance
  (``probe(current, previous) < tolerance`` ends the loop) via
  :class:`~repro.workloads.compiler.ir.StopIR`.

Both registries mirror :data:`repro.workloads.ops.HOST_OPS`: extensible by
name, with lookup errors that list what is registered.  The probes defined
here reproduce the annotations of the five hand-written workloads bit for
bit — the compiled-vs-build byte-parity goldens depend on that.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import scipy.sparse as sp

from repro.workloads.ops import triangles_from_masked

#: An annotation probe: ``fn(value, **params) -> float``.
Probe = Callable[..., float]

#: A loop-stop probe: ``fn(current, previous) -> float``.
StopProbe = Callable[[sp.csr_matrix, sp.csr_matrix], float]

#: Registered annotation probes by name.
PROBES: dict[str, Probe] = {}

#: Registered loop-stop probes by name.
STOP_PROBES: dict[str, StopProbe] = {}


def register_probe(name: str) -> Callable[[Probe], Probe]:
    """Decorator registering an annotation probe under ``name``."""
    def decorator(fn: Probe) -> Probe:
        if name in PROBES:
            raise ValueError(f"probe {name!r} is already registered")
        PROBES[name] = fn
        return fn
    return decorator


def register_stop_probe(name: str) -> Callable[[StopProbe], StopProbe]:
    """Decorator registering a loop-stop probe under ``name``."""
    def decorator(fn: StopProbe) -> StopProbe:
        if name in STOP_PROBES:
            raise ValueError(f"stop probe {name!r} is already registered")
        STOP_PROBES[name] = fn
        return fn
    return decorator


def get_probe(name: str, *, stage: str | None = None) -> Probe:
    """Look up one annotation probe; unknown names list the registry."""
    try:
        return PROBES[name]
    except KeyError:
        context = f"stage {stage!r}: " if stage else ""
        raise KeyError(
            f"{context}unknown probe {name!r}; known probes: "
            f"{', '.join(sorted(PROBES))}"
        ) from None


def get_stop_probe(name: str, *, stage: str | None = None) -> StopProbe:
    """Look up one loop-stop probe; unknown names list the registry."""
    try:
        return STOP_PROBES[name]
    except KeyError:
        context = f"stage {stage!r}: " if stage else ""
        raise KeyError(
            f"{context}unknown stop probe {name!r}; known stop probes: "
            f"{', '.join(sorted(STOP_PROBES))}"
        ) from None


# ----------------------------------------------------------------------
# Annotation probes
# ----------------------------------------------------------------------
@register_probe("rows")
def rows(value: sp.csr_matrix) -> float:
    """Number of rows."""
    return float(value.shape[0])


@register_probe("cols")
def cols(value: sp.csr_matrix) -> float:
    """Number of columns."""
    return float(value.shape[1])


@register_probe("nnz")
def nnz(value: sp.csr_matrix) -> float:
    """Stored nonzeros."""
    return float(value.nnz)


@register_probe("matrix_sum")
def matrix_sum(value: sp.csr_matrix) -> float:
    """Sum over every stored entry."""
    return float(value.sum())


@register_probe("max_value")
def max_value(value: sp.csr_matrix) -> float:
    """Largest stored entry (0 for an empty matrix)."""
    return float(value.data.max()) if value.nnz else 0.0


@register_probe("triangles_total")
def triangles_total(value: sp.csr_matrix) -> float:
    """Exact global triangle count of a masked square ``(A·A) ⊙ A``."""
    return float(triangles_from_masked(value)[1])


@register_probe("wedges")
def wedges(value: sp.csr_matrix) -> float:
    """Wedge (open-triple) count of a binary adjacency."""
    degrees = np.asarray(value.sum(axis=1)).ravel()
    return float(int((degrees * (degrees - 1) / 2).sum()))


@register_probe("off_diagonal_pairs")
def off_diagonal_pairs(value: sp.csr_matrix) -> float:
    """Unordered off-diagonal pairs of a symmetric join result."""
    off_diagonal = value.nnz - int((value.diagonal() != 0).sum())
    return float(off_diagonal // 2)


# ----------------------------------------------------------------------
# Loop-stop probes
# ----------------------------------------------------------------------
@register_stop_probe("chaos")
def chaos_stop(current: sp.csr_matrix, previous: sp.csr_matrix) -> float:
    """MCL chaos measure of the carried value (ignores ``previous``)."""
    from repro.workloads.ops import chaos

    return chaos(current)


@register_stop_probe("delta_max")
def delta_max(current: sp.csr_matrix, previous: sp.csr_matrix) -> float:
    """Largest absolute entry of ``current − previous`` (power iteration)."""
    delta = (current - previous).tocsr()
    return float(np.abs(delta.data).max()) if delta.nnz else 0.0


@register_stop_probe("rows_below")
def rows_below(current: sp.csr_matrix, previous: sp.csr_matrix) -> float:
    """Row count of the carried value (AMG: stop once coarse enough)."""
    return float(current.shape[0])
