"""The registered workload pipelines.

Each function here is a *build program*: it receives a
:class:`~repro.workloads.pipeline.PipelineBuilder` whose ``"A"`` input is
the workload's matrix, declares its stages (executing them as it goes), and
returns the name of the output stage.  Data-dependent control flow — MCL's
convergence loop, the ``A^k`` chain length — is ordinary Python.

The five registered workloads cover the end-to-end applications the SpArch
paper motivates SpGEMM with, plus classic multi-SpGEMM kernels from the
broader literature:

* ``triangles`` — triangle counting via ``(A·A) ⊙ A`` (one SpGEMM).
* ``mcl``       — Markov clustering: expansion (SpGEMM) alternating with
                  inflation/pruning until convergence.
* ``khop``      — k-hop path counting: the ``A^k`` chain (k−1 SpGEMMs).
* ``galerkin``  — algebraic-multigrid coarsening: the Galerkin triple
                  product ``R·A·P`` (two SpGEMMs).
* ``cosine``    — cosine-similarity self-join: ``Â·Âᵀ`` on L2-normalised
                  rows, thresholded (one SpGEMM, rectangular-friendly).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.ops import chaos, triangles_from_masked
from repro.workloads.pipeline import PipelineBuilder


def _require_square(pipeline: PipelineBuilder, name: str) -> None:
    shape = pipeline.shape(name)
    if shape[0] != shape[1]:
        raise ValueError(f"adjacency matrix must be square, got {shape}")


def build_triangles(pipeline: PipelineBuilder, *, normalize: bool = True
                    ) -> str:
    """Triangle counting: mask the square of the adjacency by the adjacency.

    Annotations: ``triangles`` (exact global count), ``wedges``.
    """
    _require_square(pipeline, "A")
    adjacency = "A"
    if normalize:
        adjacency = pipeline.host("adjacency", "simple_graph", "A")
    squared = pipeline.spgemm("a_squared", adjacency, adjacency)
    masked = pipeline.host("masked", "mask", squared, adjacency)

    _, triangles = triangles_from_masked(pipeline.scipy_value(masked))
    degrees = np.asarray(pipeline.scipy_value(adjacency).sum(axis=1)).ravel()
    wedges = int((degrees * (degrees - 1) / 2).sum())
    pipeline.annotate("triangles", triangles)
    pipeline.annotate("wedges", wedges)
    return masked


def build_mcl(pipeline: PipelineBuilder, *, expansion: int = 2,
              inflation: float = 2.0, prune_threshold: float = 1e-4,
              max_iterations: int = 30, tolerance: float = 1e-6,
              add_self_loops: bool = True) -> str:
    """Markov clustering: expansion SpGEMMs alternating with inflation.

    Annotations: ``iterations``, ``converged``.
    """
    _require_square(pipeline, "A")
    if expansion < 2:
        raise ValueError(f"expansion must be at least 2, got {expansion}")
    if inflation <= 1.0:
        raise ValueError(f"inflation must exceed 1, got {inflation}")

    current = pipeline.host("setup", "mcl_setup", "A",
                            add_self_loops=add_self_loops)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # --- expansion: (expansion - 1) SpGEMMs on the backend -----------
        expanded = current
        for step in range(expansion - 1):
            expanded = pipeline.spgemm(f"expand[{iterations}.{step}]",
                                       expanded, current)
        # --- inflation + pruning -----------------------------------------
        inflated = pipeline.host(f"inflate[{iterations}]", "inflate",
                                 expanded, power=inflation)
        pruned = pipeline.host(f"prune[{iterations}]", "prune", inflated,
                               threshold=prune_threshold)
        current = pipeline.host(f"normalize[{iterations}]",
                                "normalize_columns", pruned)
        if chaos(pipeline.scipy_value(current)) < tolerance:
            converged = True
            break
    pipeline.annotate("iterations", iterations)
    pipeline.annotate("converged", converged)
    return current


def build_khop(pipeline: PipelineBuilder, *, k: int = 3,
               normalize: bool = True) -> str:
    """k-hop path counting: the chain ``A² , A³ , … , A^k``.

    Entry (i, j) of the output counts the length-``k`` walks from *i* to
    *j*.  Annotations: ``k``, ``total_walks``.
    """
    _require_square(pipeline, "A")
    if k < 2:
        raise ValueError(f"k must be at least 2, got {k}")
    base = "A"
    if normalize:
        base = pipeline.host("adjacency", "simple_graph", "A")
    power = base
    for hop in range(2, k + 1):
        power = pipeline.spgemm(f"power[{hop}]", power, base)
    pipeline.annotate("k", k)
    pipeline.annotate("total_walks", float(pipeline.scipy_value(power).sum()))
    return power


def build_galerkin(pipeline: PipelineBuilder, *, group_size: int = 4) -> str:
    """Galerkin triple product ``R·A·P`` (algebraic-multigrid coarsening).

    P aggregates nodes into contiguous groups, R = Pᵀ; the coarse operator
    is computed as the SpGEMM chain ``AP = A·P`` then ``R·AP``.
    Annotations: ``coarse_rows``, ``coarse_nnz``.
    """
    _require_square(pipeline, "A")
    prolongator = pipeline.host("prolongator", "aggregation", "A",
                                group_size=group_size)
    restriction = pipeline.host("restriction", "transpose", prolongator)
    coarse_rhs = pipeline.spgemm("AP", "A", prolongator)
    coarse = pipeline.spgemm("RAP", restriction, coarse_rhs)
    pipeline.annotate("coarse_rows", pipeline.shape(coarse)[0])
    pipeline.annotate("coarse_nnz", pipeline.scipy_value(coarse).nnz)
    return coarse


def build_cosine(pipeline: PipelineBuilder, *, threshold: float = 0.2) -> str:
    """Cosine-similarity self-join: ``Â·Âᵀ`` on unit rows, thresholded.

    Keeps every pair with similarity ≥ ``threshold``.  Annotations:
    ``similar_pairs`` (off-diagonal entries of the join, halved).
    """
    normalized = pipeline.host("row_normalized", "normalize_rows", "A")
    transposed = pipeline.host("transposed", "transpose", normalized)
    similarity = pipeline.spgemm("similarity", normalized, transposed)
    joined = pipeline.host("thresholded", "prune", similarity,
                           threshold=threshold)
    value = pipeline.scipy_value(joined)
    off_diagonal = value.nnz - int((value.diagonal() != 0).sum())
    pipeline.annotate("similar_pairs", off_diagonal // 2)
    return joined
