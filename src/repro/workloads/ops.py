"""Host-side stage operations for workload pipelines.

Every non-SpGEMM stage of a workload pipeline is a *host op*: a named pure
function from ``scipy.sparse`` CSR operands (plus scalar keyword parameters)
to one CSR result.  The ops registered here are the element-wise /
normalise / prune / mask vocabulary the registered workloads are written in
(:mod:`repro.workloads.library`); new workloads can extend the vocabulary
with :func:`register_host_op`.

Host ops run on the host processor, not on the accelerator, so pipeline
stage records charge them zero cycles / DRAM traffic / energy — exactly the
accounting the end-to-end applications used before the workloads subsystem
existed (the apps timed only their SpGEMM kernels).  Ops must never mutate
their operands: pipeline values are shared between stages.

The sparse math helpers (:func:`column_normalize`, :func:`inflate`,
:func:`prune`, :func:`chaos`) are also the implementation behind
:mod:`repro.apps.markov_clustering`, so the ported app and the registered
``mcl`` workload cannot drift apart numerically.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Sequence

import numpy as np
import scipy.sparse as sp

#: A host op: ``fn(*operands, **params) -> sparse matrix``.
HostOp = Callable[..., sp.spmatrix]

#: Registered host ops by name.
HOST_OPS: dict[str, HostOp] = {}


def register_host_op(name: str) -> Callable[[HostOp], HostOp]:
    """Class-level decorator registering a host op under ``name``."""
    def decorator(fn: HostOp) -> HostOp:
        if name in HOST_OPS:
            raise ValueError(f"host op {name!r} is already registered")
        HOST_OPS[name] = fn
        return fn
    return decorator


def get_host_op(name: str, *, stage: str | None = None) -> HostOp:
    """Look up one host op by name.

    Unknown names raise ``KeyError`` listing the registered vocabulary;
    when ``stage`` is given the message leads with the failing stage, so
    pipeline errors point at the exact node.
    """
    try:
        return HOST_OPS[name]
    except KeyError:
        context = f"stage {stage!r}: " if stage else ""
        raise KeyError(
            f"{context}unknown host op {name!r}; known ops: "
            f"{', '.join(sorted(HOST_OPS))}"
        ) from None


def apply_host_op(name: str, operands: Sequence[sp.spmatrix],
                  params: dict | None = None, *,
                  stage: str | None = None) -> sp.spmatrix:
    """Apply one registered host op with stage-named diagnostics.

    Operand-count and parameter-name mismatches are caught against the
    op's signature *before* the call, so a bad stage raises a ``TypeError``
    naming the stage, the op and its real signature — instead of a bare
    Python traceback from somewhere inside the op.
    """
    fn = get_host_op(name, stage=stage)
    params = params or {}
    try:
        inspect.signature(fn).bind(*operands, **params)
    except TypeError as exc:
        context = f"stage {stage!r}: " if stage else ""
        raise TypeError(
            f"{context}host op {name!r} cannot take {len(operands)} "
            f"operand(s) with params ({', '.join(params) or 'none'}): "
            f"{exc}; signature is {name}{inspect.signature(fn)}"
        ) from None
    return fn(*operands, **params)


# ----------------------------------------------------------------------
# Shared sparse math (also used by repro.apps)
# ----------------------------------------------------------------------
def column_normalize(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Scale every column to sum to one (columns with no mass are left empty)."""
    sums = np.asarray(matrix.sum(axis=0)).ravel()
    scale = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums > 0)
    return (matrix @ sp.diags(scale)).tocsr()


def chaos(matrix: sp.csr_matrix) -> float:
    """MCL convergence measure: max over columns of (max entry − sum of squares)."""
    csc = matrix.tocsc()
    value = 0.0
    for j in range(csc.shape[1]):
        column = csc.data[csc.indptr[j]:csc.indptr[j + 1]]
        if len(column) == 0:
            continue
        value = max(value, float(column.max() - np.square(column).sum()))
    return value


def triangles_from_masked(masked: sp.spmatrix) -> tuple[np.ndarray, int]:
    """Exact triangle counts from the masked square ``(A·A) ⊙ A``.

    Every diagonal entry of ``A²·A`` — equivalently every row sum of the
    masked product — counts each triangle through that node twice, and each
    triangle touches three nodes.  The row sums of a binary adjacency
    product are integers represented exactly in float64, so the count is
    computed on integers (round each per-node half, then sum) instead of
    ``round(sum / 3)`` silently absorbing drift.

    Returns:
        ``(per_node, total)`` — float per-node triangle counts (halved row
        sums, as the apps report them) and the exact global total.

    Raises:
        ArithmeticError: if the per-node sum is not divisible by 3, i.e. the
            masked product is not the triangle structure of a simple graph.
    """
    per_node_twice = np.asarray(masked.sum(axis=1)).ravel()
    halves = np.rint(per_node_twice / 2.0).astype(np.int64)
    total = int(halves.sum())
    if total % 3 != 0:
        raise ArithmeticError(
            f"per-node triangle sum {total} is not divisible by 3; the input "
            "is not the masked square of a simple undirected graph"
        )
    return per_node_twice / 2.0, total // 3


# ----------------------------------------------------------------------
# Registered ops
# ----------------------------------------------------------------------
@register_host_op("mask")
def mask(matrix: sp.csr_matrix, pattern: sp.csr_matrix) -> sp.spmatrix:
    """Element-wise (Hadamard) product — masks ``matrix`` by ``pattern``."""
    return matrix.multiply(pattern)


@register_host_op("normalize_columns")
def normalize_columns(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Column-stochastic rescale (see :func:`column_normalize`)."""
    return column_normalize(matrix)


@register_host_op("normalize_rows")
def normalize_rows(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Scale every row to unit L2 norm (empty rows stay empty)."""
    norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel())
    scale = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
    return (sp.diags(scale) @ matrix).tocsr()


@register_host_op("inflate")
def inflate(matrix: sp.csr_matrix, *, power: float) -> sp.csr_matrix:
    """Element-wise power followed by column re-normalisation (MCL inflation)."""
    inflated = matrix.copy()
    inflated.data = np.power(inflated.data, power)
    return column_normalize(inflated)


@register_host_op("prune")
def prune(matrix: sp.csr_matrix, *, threshold: float) -> sp.csr_matrix:
    """Drop entries below ``threshold`` (keeps the matrix sparse)."""
    pruned = matrix.copy()
    pruned.data[pruned.data < threshold] = 0.0
    pruned.eliminate_zeros()
    return pruned


@register_host_op("binarize")
def binarize(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Replace every stored nonzero with 1.0."""
    binary = matrix.copy().tocsr()
    binary.eliminate_zeros()
    binary.data[:] = 1.0
    return binary


@register_host_op("transpose")
def transpose(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Matrix transpose."""
    return matrix.T.tocsr()


@register_host_op("simple_graph")
def simple_graph(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Coerce to a simple undirected graph: symmetric, zero-diagonal, binary."""
    adjacency = matrix + matrix.T
    adjacency.setdiag(0)
    adjacency.eliminate_zeros()
    adjacency.data[:] = 1.0
    return adjacency.tocsr()


@register_host_op("mcl_setup")
def mcl_setup(matrix: sp.csr_matrix, *, add_self_loops: bool = True
              ) -> sp.csr_matrix:
    """MCL input transform: |A| + |A|ᵀ (+ I), column-normalised."""
    current = abs(matrix) + abs(matrix).T
    if add_self_loops:
        current = current + sp.identity(matrix.shape[0], format="csr")
    return column_normalize(current.tocsr())


@register_host_op("aggregation")
def aggregation(matrix: sp.csr_matrix, *, group_size: int = 4) -> sp.csr_matrix:
    """Piecewise-constant prolongator P for Galerkin coarsening.

    Nodes are aggregated into contiguous groups of ``group_size``; column
    *j* of P has a unit entry for every node of aggregate *j* — the simplest
    algebraic-multigrid aggregation, enough to give the triple product
    R·A·P its real sparsity structure.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be at least 1, got {group_size}")
    num_rows = matrix.shape[0]
    num_groups = (num_rows + group_size - 1) // group_size
    rows = np.arange(num_rows, dtype=np.int64)
    cols = rows // group_size
    vals = np.ones(num_rows)
    return sp.csr_matrix((vals, (rows, cols)), shape=(num_rows, num_groups))


@register_host_op("tril")
def tril(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Strictly lower-triangular part (the L of the L·L ⊙ L triangle
    enumeration — each triangle's vertices are visited in one order)."""
    return sp.tril(matrix, k=-1).tocsr()


@register_host_op("sample_neighbors")
def sample_neighbors(matrix: sp.csr_matrix, *, fanout: int
                     ) -> sp.csr_matrix:
    """Deterministic neighbourhood sampling: keep ``fanout`` entries per row.

    GNN mini-batch pipelines cap each node's neighbourhood before
    aggregating.  This variant is deterministic — keep the ``fanout``
    largest-|value| entries of every row, ties broken toward the lowest
    column — so compiled runs are reproducible across backends and cache
    fingerprints are stable (no RNG state in the pipeline).
    """
    if fanout < 1:
        raise ValueError(f"fanout must be at least 1, got {fanout}")
    sampled = matrix.tocsr().copy()
    sampled.eliminate_zeros()
    keep = np.zeros(sampled.nnz, dtype=bool)
    for row in range(sampled.shape[0]):
        start, end = sampled.indptr[row], sampled.indptr[row + 1]
        degree = end - start
        if degree <= fanout:
            keep[start:end] = True
            continue
        magnitudes = np.abs(sampled.data[start:end])
        # Sort by (-|value|, column): stable top-fanout with low-column
        # tie-breaking, independent of scipy's internal entry order.
        ranking = np.lexsort((sampled.indices[start:end], -magnitudes))
        keep[start + ranking[:fanout]] = True
    sampled.data[~keep] = 0.0
    sampled.eliminate_zeros()
    return sampled


@register_host_op("damp")
def damp(matrix: sp.csr_matrix, base: sp.csr_matrix, *,
         alpha: float = 0.85) -> sp.csr_matrix:
    """PageRank damping: ``alpha·matrix + (1 − alpha)·base``."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    return (alpha * matrix + (1.0 - alpha) * base).tocsr()


@register_host_op("uniform_column")
def uniform_column(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """The uniform distribution over ``matrix``'s rows, as an n×1 column."""
    num_rows = matrix.shape[0]
    vals = np.full(num_rows, 1.0 / num_rows)
    rows = np.arange(num_rows, dtype=np.int64)
    cols = np.zeros(num_rows, dtype=np.int64)
    return sp.csr_matrix((vals, (rows, cols)), shape=(num_rows, 1))


@register_host_op("extract_block")
def extract_block(matrix: sp.csr_matrix, *, index: int, count: int
                  ) -> sp.csr_matrix:
    """Diagonal block ``index`` of a ``count``-way contiguous partition.

    The serving-mix workload slices one operand into ``count`` square
    diagonal blocks and runs one small SpGEMM per block — the many-small-
    multiplications regime a batched serving tier sees.
    """
    if count < 1:
        raise ValueError(f"count must be at least 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"index must be in [0, {count}), got {index}")
    num_rows = matrix.shape[0]
    start = index * num_rows // count
    end = (index + 1) * num_rows // count
    return matrix.tocsr()[start:end, start:end].tocsr()


@register_host_op("stack_blocks")
def stack_blocks(*blocks: sp.csr_matrix) -> sp.csr_matrix:
    """Block-diagonal stack of every operand (serving-mix gather)."""
    if not blocks:
        raise ValueError("stack_blocks needs at least one block")
    return sp.block_diag(blocks, format="csr")
