"""Live progress view over a growing result store: ``sweeps watch``.

A sweep's store is append-only JSONL, so progress is observable without
talking to whoever is writing it — a shard run, a fabric fleet, or a
remote rsync target.  :class:`StoreWatcher` tails the file by byte
offset, consuming only whole (``\\n``-terminated) lines: a torn or
in-flight append is left for the next poll rather than miscounted, which
is what makes watching safe alongside the fabric coordinator's atomic
appends.

The view combines three sources, all optional:

* the store file itself — records done, per-sweep counts, append rate;
* the fabric sidecar (``<store>.fabric.json``) — authoritative totals,
  pending/failed counts and quarantine post-mortems when a coordinator
  is (or was) driving the store;
* the sweep registry — total cell counts when there is no sidecar.
"""

from __future__ import annotations

import os
import sqlite3
import time
from dataclasses import dataclass, field

from repro.sweeps.registry import get_sweep, list_sweeps
from repro.sweeps.spec import enumerate_cells
from repro.sweeps.store import SweepRecord, parse_line


class StoreWatcher:
    """Incremental reader over a (possibly still growing) store file.

    Each :meth:`poll` picks up where the last one stopped and returns the
    newly appended records.  When the store's sqlite sidecar index exists
    and is current (its high-water mark covers every complete line of the
    file), polling tails *the index* — new rows past the last seen rowid —
    so a tick against a million-cell store costs one sqlite range query,
    not a file read; records surfaced this way carry their identity with
    an empty ``report`` payload (progress counting needs no metrics).
    Without a current index, polling falls back to reading the file by
    byte offset, consuming only whole (``\\n``-terminated) lines — a
    partially written last line stays unread until its terminator lands.
    A file that shrinks (rotated, torn by a crash, or compacted — the
    index generation counter flags the rowid reshuffle) resets the
    watcher to re-read from the start; records are counted by cell
    identity, so a re-read never double-counts.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._offset = 0
        self._seen: set[tuple[str, str, str, str]] = set()
        self._index = None
        self._index_rowid = 0
        self._index_generation: int | None = None

    @property
    def records_seen(self) -> int:
        """Distinct cells observed so far."""
        return len(self._seen)

    def close(self) -> None:
        """Release the index connection (watching keeps working)."""
        if self._index is not None:
            self._index.close()
            self._index = None

    def _poll_index(self) -> list[SweepRecord] | None:
        """Tail the sidecar index; ``None`` means fall back to the file.

        The index is trusted only while it can prove itself current
        (version/head/high-water checks) — a store being written without
        index maintenance, rewritten underneath it, or served by an
        unavailable sqlite silently degrades to the byte-offset scan.
        """
        from repro.sweeps.index import IndexUnavailable, SweepIndex, index_path

        if self._index is None:
            if not os.path.exists(index_path(self._path)):
                return None
            try:
                self._index = SweepIndex(self._path)
            except IndexUnavailable:
                return None
        try:
            if not self._index.is_fresh():
                return None
            generation = self._index.generation
            if generation != self._index_generation:
                # Compaction (or a rebuild) reassigned rowids: start the
                # tail over; _seen keeps re-reads from double-counting.
                self._index_rowid = 0
                self._index_generation = generation
            if self._index.max_rowid() < self._index_rowid:
                self._index_rowid = 0
            entries = self._index.entries_after(self._index_rowid)
            high_water = self._index.high_water
        except (IndexUnavailable, sqlite3.Error, OSError):
            self.close()
            return None
        fresh: list[SweepRecord] = []
        for rowid, entry in entries:
            self._index_rowid = rowid
            if entry.cell in self._seen:
                continue
            self._seen.add(entry.cell)
            fresh.append(SweepRecord(
                sweep_id=entry.sweep_id, cell_index=entry.cell_index,
                scenario=entry.scenario, engine=entry.engine,
                config_label=entry.config_label, key=entry.key, report={}))
        # Keep the byte cursor in step so a later fallback to the scan
        # path re-reads nothing the index already delivered.
        self._offset = max(self._offset, high_water)
        return fresh

    def poll(self) -> list[SweepRecord]:
        """Read any newly appended complete lines; returns fresh records."""
        fresh = self._poll_index()
        if fresh is not None:
            return fresh
        try:
            size = os.path.getsize(self._path)
        except OSError:
            return []
        if size < self._offset:
            # Truncated under us (rotation, torn-append repair): restart.
            self._offset = 0
        if size == self._offset:
            return []
        with open(self._path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read(size - self._offset)
        # Consume only up to the last newline; a torn tail waits.
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return []
        self._offset += cut + 1
        fresh: list[SweepRecord] = []
        for line in chunk[:cut + 1].splitlines():
            record = parse_line(line.decode("utf-8", errors="replace"))
            if record is None or record.cell in self._seen:
                continue
            self._seen.add(record.cell)
            fresh.append(record)
        return fresh


def _registry_total(sweep_ids: set[str]) -> int | None:
    """Total grid cells for the observed sweeps, if all are registered.

    ``None`` when a sweep is unknown (store written elsewhere) or when
    nothing has landed yet — the display falls back to ``?``.  Note the
    registry count assumes full scale (no ``--max-rows`` cap changes cell
    counts — the grid is scenario-major, caps only shrink matrices).
    """
    if not sweep_ids:
        return None
    total = 0
    for sweep_id in sweep_ids:
        if sweep_id not in list_sweeps():
            return None
        total += len(enumerate_cells(get_sweep(sweep_id)))
    return total


@dataclass
class WatchView:
    """One rendered progress sample."""

    done: int
    total: int | None
    pending: int | None
    failed: int | None
    quarantined: int
    rate: float | None
    eta_seconds: float | None
    finished: bool
    quarantine_details: tuple[dict, ...] = ()

    def render(self) -> str:
        total = "?" if self.total is None else str(self.total)
        line = f"[watch] {self.done}/{total} cells done"
        if self.pending is not None:
            line += f", {self.pending} pending"
        if self.failed:
            line += f", {self.failed} failed"
        if self.quarantined:
            line += f", {self.quarantined} quarantined"
        if self.rate is not None:
            line += f", {self.rate:.2f} rows/s"
        if self.eta_seconds is not None:
            line += f", ETA {self.eta_seconds:.0f}s"
        if self.finished:
            line += " — finished"
        return line


@dataclass
class _RateWindow:
    """Sliding append-rate estimate over the last ``span`` seconds."""

    span: float = 30.0
    samples: list[tuple[float, int]] = field(default_factory=list)

    def update(self, now: float, count: int) -> float | None:
        self.samples.append((now, count))
        while self.samples and self.samples[0][0] < now - self.span:
            self.samples.pop(0)
        if len(self.samples) < 2:
            return None
        (t0, c0), (t1, c1) = self.samples[0], self.samples[-1]
        if t1 <= t0 or c1 < c0:
            return None
        return (c1 - c0) / (t1 - t0)


def observe(path: str | os.PathLike, watcher: StoreWatcher,
            window: _RateWindow, sweep_ids: set[str], *,
            now: float) -> WatchView:
    """Take one progress sample (the testable core of the watch loop)."""
    from repro.fabric.coordinator import read_sidecar

    for record in watcher.poll():
        sweep_ids.add(record.sweep_id)
    done = watcher.records_seen
    rate = window.update(now, done)

    sidecar = read_sidecar(path)
    pending = failed = None
    quarantined = 0
    details: tuple[dict, ...] = ()
    total = None
    finished = False
    if sidecar is not None:
        counts = sidecar.get("counts", {})
        total = sidecar.get("total_cells")
        pending = counts.get("pending")
        failed = sidecar.get("stats", {}).get("failures")
        quarantined = counts.get("quarantined", 0)
        details = tuple(sidecar.get("quarantined", ()))
        finished = bool(sidecar.get("finished"))
    if total is None:
        total = _registry_total(sweep_ids)
    if not finished and total is not None:
        finished = done + quarantined >= total
    eta = None
    if (rate and total is not None and not finished):
        eta = max(0.0, (total - quarantined - done) / rate)
    return WatchView(done=done, total=total, pending=pending,
                     failed=failed, quarantined=quarantined, rate=rate,
                     eta_seconds=eta, finished=finished,
                     quarantine_details=details)


def watch_store(path: str | os.PathLike, *,
                interval: float = 2.0,
                iterations: int | None = None,
                out=None) -> WatchView:
    """Poll a store file and print progress until finished.

    Args:
        path: the store file (it may not exist yet — the watcher waits).
        interval: seconds between polls.
        iterations: stop after this many samples regardless of progress
            (tests, CI one-shots); ``None`` runs until finished.
        out: writable stream (defaults to stdout).

    Returns:
        The last sampled view.
    """
    import sys

    out = sys.stdout if out is None else out
    watcher = StoreWatcher(path)
    window = _RateWindow()
    sweep_ids: set[str] = set()
    samples = 0
    while True:
        view = observe(path, watcher, window, sweep_ids,
                       now=time.monotonic())
        print(view.render(), file=out, flush=True)
        samples += 1
        if view.finished:
            for cell in view.quarantine_details:
                print(f"[watch] quarantined cell {cell['cell_index']} "
                      f"after {cell['attempts']} attempts: "
                      f"{cell['error']}", file=out, flush=True)
            return view
        if iterations is not None and samples >= iterations:
            return view
        time.sleep(interval)
