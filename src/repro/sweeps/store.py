"""Append-only, resumable JSONL result store for corpus sweeps.

One line per completed sweep cell: the cell's coordinates (scenario /
engine / config label, plus its canonical index), the *runner fingerprint*
the cell's :class:`~repro.metrics.report.CostReport` is memoised under, and
the schema-versioned report payload itself.  The format is designed around
three operations a long-running sweep needs:

* **Resume** — a killed run reopens its store, collects the cell
  identities of the lines that survived (a torn final line from the kill
  parses as corrupt and is simply skipped), and re-executes only cells
  without a record.  Every grid cell gets exactly one record — cells that
  share a fingerprint (two ladder rungs capping to one proxy, grid configs
  coinciding at small scale) *compute* once through the runner's memo but
  are each recorded under their own coordinates, so summaries never lose a
  grid point.
* **Rotation** — a line whose report was written under an older
  :data:`~repro.metrics.report.SCHEMA_VERSION` (or store layout) is treated
  as *not done*: stale results rotate out by recomputation, exactly like
  the experiment runner's cache keys, never by coercion.
* **Merge** — shard stores concatenate into one *canonical* store:
  records sorted by canonical cell order and deduplicated per cell.
  Canonicalisation makes the merged bytes a pure function of the sweep
  spec and the engines' deterministic results — independent of shard
  count, resume points and append order — which is what the resumability
  tests assert byte-for-byte.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import NamedTuple

from repro.metrics.report import SCHEMA_VERSION, CostReport
from repro.sweeps.spec import cell_key

#: Version of the store line layout.  Bump on any incompatible change;
#: loading skips (and a resumed sweep recomputes) lines from other layouts.
STORE_VERSION = 1


@dataclass(frozen=True)
class SweepRecord:
    """One completed cell: coordinates, runner fingerprint, cost report.

    Attributes:
        sweep_id: the owning sweep's registry id.
        cell_index: the cell's position in the sweep's canonical order.
        scenario: corpus scenario name.
        engine: engine registry name.
        config_label: SpArch config label (``"-"`` for baselines).
        key: the experiment runner's point fingerprint — the identity the
            runner memoises the report under, linking store records to the
            shared simulation memo (and letting the driver detect a store
            written under different parameters).
        report: the cell's ``CostReport.to_dict()`` payload, verbatim.
    """

    sweep_id: str
    cell_index: int
    scenario: str
    engine: str
    config_label: str
    key: str
    report: dict

    @property
    def cell(self) -> tuple[str, str, str, str]:
        """The record's cell identity (sweep, scenario, engine, config)."""
        return (self.sweep_id, self.scenario, self.engine, self.config_label)

    @property
    def report_key(self) -> str:
        """The record's report key, ``scenario|engine|config``."""
        return cell_key(self.scenario, self.engine, self.config_label)

    def to_line(self) -> str:
        """Serialise to one canonical JSONL line (sorted keys, ``\\n``)."""
        payload = {
            "store_version": STORE_VERSION,
            "sweep_id": self.sweep_id,
            "cell_index": self.cell_index,
            "scenario": self.scenario,
            "engine": self.engine,
            "config_label": self.config_label,
            "key": self.key,
            "report": self.report,
        }
        return json.dumps(payload, sort_keys=True) + "\n"

    def cost_report(self) -> CostReport:
        """Deserialise the embedded report."""
        return CostReport.from_dict(self.report)


class CellEntry(NamedTuple):
    """One recorded cell's *identity*: coordinates plus runner fingerprint.

    The lightweight view resume and grid-consistency checks work from —
    everything a :class:`SweepRecord` knows except the report payload, so
    index-backed stores can answer "which cells are done, under which
    key?" without hydrating a single report from the JSONL.
    """

    sweep_id: str
    scenario: str
    engine: str
    config_label: str
    key: str
    cell_index: int

    @property
    def cell(self) -> tuple[str, str, str, str]:
        """The cell identity tuple, as :attr:`SweepRecord.cell` shapes it."""
        return (self.sweep_id, self.scenario, self.engine, self.config_label)

    @property
    def report_key(self) -> str:
        """The cell's report key, ``scenario|engine|config``."""
        return cell_key(self.scenario, self.engine, self.config_label)


def parse_line(line: str) -> SweepRecord | None:
    """Parse one store line; ``None`` marks it *not done* (recompute).

    Returns ``None`` for blank lines, torn/corrupt JSON (a kill mid-append),
    other store layouts, and reports written under a different
    :data:`~repro.metrics.report.SCHEMA_VERSION` — stale entries rotate by
    recomputation, never by coercion.
    """
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("store_version") != STORE_VERSION:
        return None
    report = payload.get("report")
    if (not isinstance(report, dict)
            or report.get("schema_version") != SCHEMA_VERSION):
        return None
    try:
        return SweepRecord(
            sweep_id=str(payload["sweep_id"]),
            cell_index=int(payload["cell_index"]),
            scenario=str(payload["scenario"]),
            engine=str(payload["engine"]),
            config_label=str(payload["config_label"]),
            key=str(payload["key"]),
            report=report,
        )
    except (KeyError, TypeError, ValueError):
        return None


class ResultStore:
    """Append-only record store, optionally persisted as a JSONL file.

    Args:
        path: JSONL file location; an existing file's valid records are
            loaded (that is what makes a sweep resumable).  ``None`` keeps
            the store in memory only — one process lifetime, used by the
            ``sweep`` experiment harness when no ``--store`` is given.
        fsync: flush each appended record to stable storage before
            returning.  Off by default (a torn tail already rotates by
            recomputation); the fabric coordinator turns it on when asked
            to survive power loss, not just process death.
        index: maintain the sqlite sidecar index
            (:mod:`repro.sweeps.index`) alongside the file.  On by
            default for file-backed stores: when an up-to-date sidecar is
            present the store opens *lazily* — cell identities come from
            the index and report payloads hydrate on demand from their
            recorded (offset, length) byte ranges, so opening a
            million-cell store for resume no longer parses every line.
            The index is derived data: if it is missing it is rebuilt
            (one scan, amortised over every later open), and if sqlite is
            unavailable the store silently falls back to the eager
            JSONL-scanning behaviour — the JSONL alone is always enough.
    """

    def __init__(self, path: str | os.PathLike | None = None, *,
                 fsync: bool = False, index: bool = True) -> None:
        self._path = Path(path) if path is not None else None
        self._fsync = fsync
        self._records: list[SweepRecord] | None = []
        self._cells: dict[tuple[str, str, str, str],
                          tuple[str, int]] = {}
        self._keys: set[str] = set()
        self._needs_newline = False
        self._index = None
        if self._path is None:
            return
        if index:
            self._index = self._open_index()
        if self._path.is_file():
            if self._index is not None:
                # Lazy open: identities from the (just refreshed) index;
                # payloads hydrate on demand via their byte ranges.
                self._records = None
                for entry in self._index.cell_entries():
                    self._cells[entry.cell] = (entry.key, entry.cell_index)
                    self._keys.add(entry.key)
                self._needs_newline = self._tail_unterminated()
            else:
                self._load_eager()

    def _open_index(self):
        """Open and refresh the sidecar; ``None`` when sqlite can't."""
        from repro.sweeps.index import IndexUnavailable, SweepIndex

        try:
            store_index = SweepIndex(self._path)
        except IndexUnavailable:
            return None
        try:
            store_index.refresh()
        except IndexUnavailable:
            store_index.close()
            return None
        except BaseException:
            # A conflicting (mixed) store is refused exactly as the eager
            # loader refuses it — don't leak the connection on the way out.
            store_index.close()
            raise
        return store_index

    def _tail_unterminated(self) -> bool:
        """Whether the file ends without a newline (torn/in-flight tail).

        A kill mid-append leaves a torn final line with no newline; the
        first append after resume must not glue its record onto that
        fragment (which would silently corrupt *both* lines).
        """
        try:
            size = os.path.getsize(self._path)
            if size == 0:
                return False
            with open(self._path, "rb") as handle:
                handle.seek(size - 1)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    def _load_eager(self) -> None:
        """Parse the whole JSONL into memory (the index-free path)."""
        self._records = []
        self._cells = {}
        self._keys = set()
        self._needs_newline = False
        if self._path is None or not self._path.is_file():
            return
        text = self._path.read_text()
        self._needs_newline = bool(text) and not text.endswith("\n")
        for line in text.splitlines():
            record = parse_line(line)
            if record is None:
                continue
            existing = self._cells.get(record.cell)
            if existing is None:
                self._records.append(record)
                self._cells[record.cell] = (record.key,
                                            record.cell_index)
                self._keys.add(record.key)
            elif existing != (record.key, record.cell_index):
                # Two fingerprints (or canonical indices) for one cell
                # in a single file: the file concatenates stores
                # written under different parameters or spec
                # revisions.  A legitimate store can never contain
                # this (the driver refuses cross-parameter appends),
                # so fail loudly rather than silently keep one side.
                raise ValueError(
                    f"store {self._path} holds conflicting records "
                    f"for cell {'|'.join(record.cell[1:])!r} of sweep "
                    f"{record.cell[0]!r} — it mixes results written "
                    f"under different parameters or spec revisions"
                )

    def _disable_index(self) -> None:
        if self._index is not None:
            self._index.close()
            self._index = None

    def _hydrate(self) -> None:
        """Materialise ``_records``: by byte range if indexed, else scan."""
        if self._index is not None:
            from repro.sweeps.index import IndexUnavailable, iter_hydrated

            try:
                self._records = list(iter_hydrated(self._path, self._index))
                return
            except (IndexUnavailable, OSError, ValueError):
                # The store changed underneath the index (or sqlite gave
                # out): distrust the sidecar, trust the JSONL.
                self._disable_index()
        self._load_eager()

    def close(self) -> None:
        """Release the sidecar index connection (appends keep working)."""
        self._disable_index()

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path | None:
        return self._path

    @property
    def index(self):
        """The live :class:`~repro.sweeps.index.SweepIndex`, if any."""
        return self._index

    @property
    def records(self) -> list[SweepRecord]:
        """The loaded/appended records, in arrival order (a copy)."""
        if self._records is None:
            self._hydrate()
        return list(self._records)

    def cell_entries(self) -> list[CellEntry]:
        """Every recorded cell's identity, in arrival order.

        The resume-path view: on an index-backed store this never reads
        the JSONL, so restarting against a huge store is O(cells already
        known) in sqlite, not a full re-parse.
        """
        return [CellEntry(*cell, key, cell_index)
                for cell, (key, cell_index) in self._cells.items()]

    @property
    def done_cells(self) -> set[tuple[str, str, str, str]]:
        """Cell identities of every recorded cell (a copy)."""
        return set(self._cells)

    @property
    def done_keys(self) -> set[str]:
        """Runner fingerprints of every recorded cell (a copy)."""
        return set(self._keys)

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: str) -> bool:
        """Whether any recorded cell carries this runner fingerprint."""
        return key in self._keys

    # ------------------------------------------------------------------
    def append(self, record: SweepRecord) -> None:
        """Append one completed cell, flushed to disk immediately.

        Duplicate *cells* are ignored (each grid cell has exactly one
        record); distinct cells sharing a fingerprint are all recorded —
        the computation deduplicates in the runner's memo, the grid never
        loses a point.

        The on-disk append is one ``write()`` of the whole record to an
        ``O_APPEND`` descriptor: concurrent writers (fabric workers, two
        shard runs sharing a store) each land their record at the end of
        the file atomically, so records from different processes never
        interleave *within* a line — the worst a concurrent schedule can
        produce is duplicate whole records, which loading and merging
        already deduplicate.
        """
        if record.cell in self._cells:
            return
        if self._records is not None:
            self._records.append(record)
        self._cells[record.cell] = (record.key, record.cell_index)
        self._keys.add(record.key)
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            line = record.to_line().encode("utf-8")
            data = line
            if self._needs_newline:
                # Terminate the torn line a kill left behind (within the
                # same atomic write), so it stays an isolated (skipped)
                # fragment instead of corrupting this record too.
                data = b"\n" + data
                self._needs_newline = False
            descriptor = os.open(self._path,
                                 os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                                 0o644)
            try:
                # One write() call for the whole record: O_APPEND makes it
                # land atomically at the end of the file.  (Regular-file
                # writes of record-sized buffers do not split; the loop
                # merely guarantees completeness if one ever did.)
                view = memoryview(data)
                while view:
                    view = view[os.write(descriptor, view):]
                # Where the record landed: the descriptor position after
                # an O_APPEND write is exact even with concurrent
                # writers, which a pre-write size probe would not be.
                end = os.lseek(descriptor, 0, os.SEEK_CUR)
                if self._fsync:
                    os.fsync(descriptor)
            finally:
                os.close(descriptor)
            if self._index is not None:
                from repro.sweeps.index import IndexUnavailable

                try:
                    # length excludes the trailing newline, matching what
                    # hydration reads back through parse_line.
                    self._index.note_append(record, end - len(line),
                                            len(line) - 1)
                except IndexUnavailable:
                    # The record is safe in the JSONL (the source of
                    # truth); run on without the sidecar rather than
                    # failing a sweep over a sqlite hiccup.
                    self._disable_index()

    def reports(self) -> dict[str, CostReport]:
        """Every record's report, keyed by ``scenario|engine|config``.

        Raises ``ValueError`` for stores shared by several sweeps — filter
        :attr:`records` by ``sweep_id`` first.
        """
        return records_to_reports(self.records)


def require_single_sweep(records: list[SweepRecord]) -> None:
    """Reject record sets spanning more than one sweep.

    The per-cell report keys and the (engine, config) summary groups are
    meaningful within one sweep's grid; silently collapsing or mixing the
    cells of two sweeps sharing a store would misattribute results.
    Callers holding a shared store filter by ``sweep_id`` first (as the
    summarise CLI and the ``sweep`` experiment do).
    """
    sweep_ids = {record.sweep_id for record in records}
    if len(sweep_ids) > 1:
        raise ValueError(
            f"records span multiple sweeps ({', '.join(sorted(sweep_ids))});"
            f" filter by sweep_id before keying or summarising them"
        )


def records_to_reports(records: list[SweepRecord]) -> dict[str, CostReport]:
    """Deserialise records into ``{"scenario|engine|config": report}``.

    The one definition of the report-key format, shared by
    :meth:`ResultStore.reports` and the ``sweep`` experiment harness.
    Records must belong to one sweep (see :func:`require_single_sweep`).
    """
    require_single_sweep(records)
    return {record.report_key: record.cost_report() for record in records}


# ----------------------------------------------------------------------
# Streaming access (bounded memory for million-cell stores)
# ----------------------------------------------------------------------
def iter_records(path: str | os.PathLike):
    """Yield a store file's valid records one line at a time.

    The streaming counterpart of ``ResultStore(path).records``: invalid
    lines (blank, torn, other layouts, stale schema) are skipped exactly as
    the store constructor skips them, but only one record is materialised
    at a time — summaries and merges of million-cell stores stay within
    bounded memory.

    Raises:
        FileNotFoundError: when the file does not exist (unlike
            :class:`ResultStore`, a streaming reader has no "fresh store"
            interpretation for a missing file).
    """
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            record = parse_line(line)
            if record is not None:
                yield record


def _conflict_error(cell: tuple[str, str, str, str]) -> ValueError:
    """The canonical-merge conflict error (shared by both merge paths)."""
    return ValueError(
        f"conflicting records for cell {'|'.join(cell[1:])!r} of sweep "
        f"{cell[0]!r}: two fingerprints or canonical indices — the inputs "
        f"were written under different parameters or spec revisions and "
        f"cannot be merged"
    )


def merge_files_to(paths: list[str | os.PathLike],
                   out_path: str | os.PathLike) -> int:
    """Stream shard stores into one canonical store file.

    Byte-identical output to
    ``write_records(out_path, merge_files(paths))`` — same sort order, same
    per-cell deduplication, same conflict refusal — but only a
    *coordinate index* (cell → fingerprint, canonical index, byte range)
    is ever held in memory.  Pass one: scan every line, keep each cell's
    first valid record location, refuse conflicting duplicates.  Pass two:
    revisit the surviving locations in canonical order and re-serialise
    each record through :meth:`SweepRecord.to_line`.

    Returns:
        The number of records written.

    Raises:
        FileNotFoundError: when a named shard store does not exist.
        ValueError: on conflicting duplicate cells (see
            :func:`merge_records`) or when a store file changes between
            the two passes.
    """
    # Pass 1: coordinate index only — no report payload is retained.
    locations: dict[tuple[str, str, str, str],
                    tuple[int, str, Path, int, int]] = {}
    for path in paths:
        path = Path(path)
        if not path.is_file():
            raise FileNotFoundError(f"result store not found: {path}")
        offset = 0
        with open(path, "rb") as handle:
            for raw in handle:
                length = len(raw)
                record = parse_line(raw.decode("utf-8", errors="replace"))
                if record is not None:
                    existing = locations.get(record.cell)
                    if existing is None:
                        locations[record.cell] = (record.cell_index,
                                                  record.key, path, offset,
                                                  length)
                    elif existing[:2] != (record.cell_index, record.key):
                        raise _conflict_error(record.cell)
                offset += length

    ordered = sorted(locations.items(),
                     key=lambda item: (item[0][0], item[1][0], item[1][1]))

    # Pass 2: seek back to each surviving line and re-serialise it.
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    handles: dict[Path, object] = {}
    try:
        with open(out_path, "w", encoding="utf-8") as sink:
            for cell, (_, _, path, offset, length) in ordered:
                handle = handles.get(path)
                if handle is None:
                    handle = handles[path] = open(path, "rb")
                handle.seek(offset)
                record = parse_line(handle.read(length).decode("utf-8"))
                if record is None or record.cell != cell:
                    raise ValueError(
                        f"result store {path} changed while being merged"
                    )
                sink.write(record.to_line())
    finally:
        for handle in handles.values():
            handle.close()
    return len(ordered)


# ----------------------------------------------------------------------
# Canonical merge
# ----------------------------------------------------------------------
def merge_records(records: list[SweepRecord]) -> list[SweepRecord]:
    """Canonicalise records: sort by canonical cell order, one per cell.

    Duplicate records of one *cell* (the same file merged twice, a race
    between concurrent writers) collapse to the first in sorted order;
    distinct cells always survive, even when they share a fingerprint.
    The result is independent of input order, shard split and resume
    history.

    Raises:
        ValueError: when two records of one cell carry *different*
            fingerprints or canonical indices — the inputs were produced
            under different parameters (corpus scale, forced backend) or
            spec revisions (added/reordered scenarios), and collapsing
            them would quietly mix incompatible grids; mixed stores are
            refused, never merged.
    """
    merged: dict[tuple[str, str, str, str], SweepRecord] = {}
    for record in sorted(records,
                         key=lambda r: (r.sweep_id, r.cell_index, r.key)):
        existing = merged.get(record.cell)
        if existing is None:
            merged[record.cell] = record
        elif (existing.key != record.key
              or existing.cell_index != record.cell_index):
            raise _conflict_error(record.cell)
    return sorted(merged.values(),
                  key=lambda r: (r.sweep_id, r.cell_index, r.key))


def merge_files(paths: list[str | os.PathLike]) -> list[SweepRecord]:
    """Load shard stores and merge them canonically.

    Raises:
        FileNotFoundError: when a named store does not exist — a merge
            quietly missing a shard would produce a plausible-looking but
            incomplete result set, so a typo'd path must fail loudly
            (unlike :class:`ResultStore`, whose missing file legitimately
            means "fresh store").
    """
    records: list[SweepRecord] = []
    for path in paths:
        if not Path(path).is_file():
            raise FileNotFoundError(f"result store not found: {path}")
        records.extend(ResultStore(path).records)
    return merge_records(records)


def render_records(records: list[SweepRecord]) -> str:
    """The canonical byte content of a store holding ``records``."""
    return "".join(record.to_line() for record in records)


def write_records(path: str | os.PathLike, records: list[SweepRecord]
                  ) -> None:
    """Write a canonical (merged) store file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_records(records))
