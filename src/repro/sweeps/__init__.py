"""Sharded, resumable corpus sweeps with an append-only result store.

* :mod:`repro.sweeps.spec` — :class:`SweepSpec` (corpus × engines ×
  SpArch configs) and the canonical cell order / shard assignment.
* :mod:`repro.sweeps.store` — the JSONL :class:`ResultStore`: one
  schema-versioned :class:`~repro.metrics.report.CostReport` per cell,
  keyed by the experiment runner's fingerprint, with canonical merging.
* :mod:`repro.sweeps.driver` — :func:`run_sweep`, the sharded/resumable
  executor over :class:`~repro.experiments.runner.ExperimentRunner`.
* :mod:`repro.sweeps.index` — the sqlite sidecar index
  (:class:`SweepIndex`): one row per cell with byte ranges and
  denormalised summary scalars, so summaries, filters and resume never
  re-scan the JSONL; always rebuildable from the JSONL alone.
* :mod:`repro.sweeps.compact` — :func:`compact_store`, the atomic
  segment rewrite dropping superseded duplicates and torn tails (merge
  output stays byte-identical).
* :mod:`repro.sweeps.synth` — deterministic synthetic stores for
  benchmarks and CI at paper scale.
* :mod:`repro.sweeps.registry` — registered sweeps (``smoke``,
  ``fig17-dse``, ``engines-suite``, ``rmat-sweep``).
* :mod:`repro.sweeps.watch` — live progress view over a growing store
  (index tailing with incremental-read fallback; fabric-sidecar aware).
* ``python -m repro.sweeps`` — the run / merge / summarise / compact /
  synth / watch CLI.
"""

from repro.sweeps.compact import CompactionStats, compact_store
from repro.sweeps.driver import (
    SweepRunSummary,
    group_reports,
    run_sweep,
    summarise_groups,
    summarise_records,
)
from repro.sweeps.index import (
    INDEX_VERSION,
    IndexUnavailable,
    SweepIndex,
    drop_index,
    ensure_index,
    index_path,
    open_fresh_index,
)
from repro.sweeps.registry import SWEEPS, get_sweep, list_sweeps
from repro.sweeps.spec import (
    NO_CONFIG_LABEL,
    SweepCell,
    SweepSpec,
    enumerate_cells,
    shard_cells,
)
from repro.sweeps.store import (
    STORE_VERSION,
    CellEntry,
    ResultStore,
    SweepRecord,
    merge_files,
    merge_records,
    parse_line,
    records_to_reports,
    render_records,
    require_single_sweep,
    write_records,
)
from repro.sweeps.synth import synthetic_record, write_synthetic_store
from repro.sweeps.watch import StoreWatcher, WatchView, watch_store

__all__ = [
    "SweepSpec",
    "SweepCell",
    "NO_CONFIG_LABEL",
    "enumerate_cells",
    "shard_cells",
    "ResultStore",
    "SweepRecord",
    "CellEntry",
    "STORE_VERSION",
    "parse_line",
    "merge_records",
    "merge_files",
    "records_to_reports",
    "render_records",
    "require_single_sweep",
    "write_records",
    "SweepIndex",
    "IndexUnavailable",
    "INDEX_VERSION",
    "index_path",
    "ensure_index",
    "open_fresh_index",
    "drop_index",
    "CompactionStats",
    "compact_store",
    "write_synthetic_store",
    "synthetic_record",
    "run_sweep",
    "SweepRunSummary",
    "group_reports",
    "summarise_groups",
    "summarise_records",
    "SWEEPS",
    "list_sweeps",
    "get_sweep",
    "StoreWatcher",
    "WatchView",
    "watch_store",
]
