"""Sharded, resumable sweep execution over the experiment runner.

:func:`run_sweep` turns a frozen :class:`~repro.sweeps.spec.SweepSpec` into
engine executions: it enumerates the canonical cell order, keeps the
deterministic ``index % shard_count`` slice, skips every cell already
recorded in the :class:`~repro.sweeps.store.ResultStore`, and runs the
rest in chunks through
:meth:`~repro.experiments.runner.ExperimentRunner.run_engine_many` (process
fan-out under ``--jobs``), appending one schema-versioned record per cell
as each chunk lands.  Because records append *per chunk* and done-ness is
per cell, a killed sweep loses at most one chunk of work and a resumed one
re-executes only unfinished cells.

Each record also carries the runner's point fingerprint: cells that
coincide (two grid configs collapsing to one effective design) still get
their own records but *compute* once through the runner's memo, and a
sweep sharing a ``--cache-dir`` with the figure harnesses replays their
overlapping points instead of re-simulating them — and vice versa.  The
fingerprint doubles as a guard: a store whose records disagree with the
current invocation's fingerprints was written under different parameters
and is refused rather than silently mixed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import groupby

from repro.corpus.spec import CorpusSpec, Scenario, scenario_fingerprint
from repro.engines.base import Engine
from repro.engines.registry import create_engine
from repro.experiments.designspace import geomean_gflops
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.metrics.report import CostReport
from repro.sweeps.spec import SweepCell, SweepSpec, enumerate_cells, shard_cells
from repro.sweeps.store import (
    CellEntry,
    ResultStore,
    SweepRecord,
    records_to_reports,
)
from repro.utils.reporting import Table


@dataclass(frozen=True)
class SweepRunSummary:
    """Outcome of one :func:`run_sweep` invocation.

    Attributes:
        sweep_id: the executed sweep.
        shard_index / shard_count: the shard this invocation owned.
        cells_grid: cells in the whole sweep grid.
        cells_shard: cells assigned to this shard.
        executed: cells recorded by this invocation (coinciding cells
            compute once through the runner's memo but each count here).
        replayed: shard cells already recorded in the store — skipped.
        remaining: shard cells left unexecuted by a ``max_cells`` stop.
        failed: cells that hit the ``cell_timeout`` wall clock (or whose
            engine raised under it) — *failed but retryable*: no record is
            appended, so a resumed run re-attempts exactly these cells.
        failed_cells: the failed cells' ``scenario|engine|config`` ids.
    """

    sweep_id: str
    shard_index: int
    shard_count: int
    cells_grid: int
    cells_shard: int
    executed: int
    replayed: int
    remaining: int
    failed: int = 0
    failed_cells: tuple[str, ...] = ()

    def render(self) -> str:
        """One status line, e.g. for the CLI."""
        line = (f"[sweep {self.sweep_id}] shard "
                f"{self.shard_index}/{self.shard_count}: "
                f"{self.cells_shard} of {self.cells_grid} cells, "
                f"{self.executed} executed, {self.replayed} replayed, "
                f"{self.remaining} remaining")
        if self.failed:
            line += (f", {self.failed} failed-retryable "
                     f"({', '.join(self.failed_cells)})")
        return line


def _cell_engine(cell: SweepCell,
                 engines: dict[tuple[str, str], Engine]) -> Engine:
    """Build (or reuse) the engine instance executing ``cell``."""
    cache_key = (cell.engine, cell.config_label)
    if cache_key not in engines:
        if cell.config is not None:
            engines[cache_key] = create_engine(cell.engine,
                                               config=cell.config)
        else:
            engines[cache_key] = create_engine(cell.engine)
    return engines[cache_key]


def _check_store_consistency(spec: SweepSpec, corpus: CorpusSpec,
                             store: ResultStore, runner: ExperimentRunner,
                             engines: dict[tuple[str, str], Engine],
                             expected_keys: dict[tuple[str, str, str, str],
                                                 str],
                             fingerprints: dict[str, str],
                             indices: dict[tuple[str, str, str, str], int]
                             ) -> None:
    """Refuse to resume a store written under different parameters.

    Every record of *this* sweep — this shard's cells and the ones other
    shards wrote into a shared store alike — must sit at its cell's
    current canonical index *and* carry the fingerprint the current
    invocation would compute for it.  A disagreement means a different
    corpus scale, a forced backend, or an edited spec (renamed labels,
    added or reordered scenarios); resuming anyway would append a second,
    incompatible copy of the grid — or scramble the canonical order the
    byte-identical merge contract rests on.  Records of *other* sweeps are
    ignored: stores may legitimately be shared, each sweep owning its own
    cells.

    Works from :meth:`~repro.sweeps.store.ResultStore.cell_entries` — the
    identities-only view — so resuming against an index-backed store never
    hydrates a single report payload.
    """
    for record in store.cell_entries():
        if record.sweep_id != spec.sweep_id:
            continue
        if indices.get(record.cell) != record.cell_index:
            raise ValueError(
                f"result store {store.path or '<memory>'} holds cell "
                f"{'|'.join(record.cell[1:])!r} of sweep "
                f"{spec.sweep_id!r} at canonical index "
                f"{record.cell_index}, which does not match the current "
                f"grid — the spec or corpus was edited since the store "
                f"was written; use a fresh store"
            )
        expected = expected_keys.get(record.cell)
        if expected is None:
            expected = _expected_record_key(record, spec, corpus, runner,
                                            engines, fingerprints)
            if expected is not None:
                expected_keys[record.cell] = expected
        if expected is None or record.key != expected:
            raise ValueError(
                f"result store {store.path or '<memory>'} holds cell "
                f"{'|'.join(record.cell[1:])!r} of sweep "
                f"{spec.sweep_id!r} under a different fingerprint — it was "
                f"written with different parameters (corpus scale, forced "
                f"backend, or an edited spec); use a fresh store or rerun "
                f"with the original parameters"
            )


def _expected_record_key(record: "SweepRecord | CellEntry", spec: SweepSpec,
                         corpus: CorpusSpec, runner: ExperimentRunner,
                         engines: dict[tuple[str, str], Engine],
                         fingerprints: dict[str, str]) -> str | None:
    """The fingerprint this invocation would assign a record's cell.

    Used for records outside the current shard's slice (another shard's
    cells in a shared store).  Returns ``None`` when the record's
    coordinates do not exist in the current spec/corpus — an edited spec,
    which the caller reports as an inconsistency.
    """
    if record.engine not in spec.engines:
        return None
    try:
        scenario = corpus.get_scenario(record.scenario)
        config = spec.config_for(record.config_label)
    except KeyError:
        return None
    engine_key = (record.engine, record.config_label)
    if engine_key not in engines:
        engines[engine_key] = (create_engine(record.engine, config=config)
                               if config is not None
                               else create_engine(record.engine))
    fingerprint = fingerprints.get(record.scenario)
    if fingerprint is None:
        fingerprint = scenario_fingerprint(scenario)
        fingerprints[record.scenario] = fingerprint
    # With a precomputed operand fingerprint the matrix itself is not
    # needed by the key computation (self-product, B = A).
    return runner.point_key(engines[engine_key], None,
                            fingerprint_a=fingerprint)


def run_sweep(spec: SweepSpec, *,
              store: ResultStore | str | os.PathLike | None = None,
              runner: ExperimentRunner | None = None,
              shard_index: int = 0, shard_count: int = 1,
              max_rows: int | None = None,
              max_cells: int | None = None,
              chunk_size: int | None = None,
              cell_timeout: float | None = None
              ) -> tuple[SweepRunSummary, ResultStore]:
    """Execute (this shard of) a sweep, appending results to the store.

    Args:
        spec: the frozen sweep declaration.
        store: result store instance, JSONL path, or ``None`` for an
            in-memory store.  An existing file resumes: recorded cells are
            skipped, unfinished ones execute.
        runner: experiment runner (memoisation, ``--jobs`` fan-out);
            defaults to the process-wide runner.
        shard_index / shard_count: deterministic ``index % shard_count``
            slice of the canonical cell order this invocation owns.
        max_rows: cap the corpus scenario dimensions (smoke runs).
        max_cells: stop after executing this many cells — the programmatic
            equivalent of a mid-flight kill, used by the resumability tests
            and useful for time-boxed incremental runs.
        chunk_size: cells per execution batch (defaults to the runner's
            job count); records append after each batch, bounding how much
            work a kill can lose.
        cell_timeout: per-cell wall-clock budget in seconds.  With it set,
            each uncached cell runs in a killable process and a hung (or
            crashing) engine marks that cell *failed-retryable* — counted
            in the summary, no record appended — instead of blocking the
            shard forever.  ``None`` (default) lets cells run unbounded.

    Returns:
        ``(summary, store)`` — the run's counts and the (possibly newly
        created) store holding every completed cell.
    """
    runner = runner or default_runner()
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    cells = enumerate_cells(spec, max_rows=max_rows)
    mine = shard_cells(cells, shard_index, shard_count)

    corpus = spec.corpus_spec(max_rows=max_rows)
    engines: dict[tuple[str, str], Engine] = {}
    pending: list[tuple[SweepCell, Engine, str]] = []
    expected_keys: dict[tuple[str, str, str, str], str] = {}
    fingerprints: dict[str, str] = {}
    done = store.done_cells
    replayed = 0
    # Key cells one scenario at a time (the shard slice preserves the
    # scenario-major canonical order): each operand's fingerprint comes
    # from the recipe-keyed memo — a scenario this process hashed before
    # is not even rebuilt, so a fully-recorded (no-op) resume touches no
    # matrices at all, and a cold one holds at most one matrix at a time.
    for name, group in groupby(mine, key=lambda cell: cell.scenario.name):
        fingerprint = scenario_fingerprint(corpus.get_scenario(name))
        fingerprints[name] = fingerprint
        for cell in group:
            engine = _cell_engine(cell, engines)
            key = runner.point_key(engine, None, fingerprint_a=fingerprint)
            cell_identity = (spec.sweep_id, name, cell.engine,
                             cell.config_label)
            expected_keys[cell_identity] = key
            if cell_identity in done:
                replayed += 1
            else:
                pending.append((cell, engine, key))

    indices = {(spec.sweep_id, cell.scenario.name, cell.engine,
                cell.config_label): cell.index for cell in cells}
    _check_store_consistency(spec, corpus, store, runner, engines,
                             expected_keys, fingerprints, indices)

    if max_cells is not None and max_cells < 0:
        raise ValueError(f"max_cells must be non-negative, got {max_cells}")
    budget = len(pending) if max_cells is None else min(max_cells,
                                                        len(pending))
    chunk = max(1, chunk_size if chunk_size is not None else runner.jobs)

    # Execution materialises operands lazily, chunk by chunk, and frees
    # each scenario's matrix after its last pending cell runs — peak
    # memory is one chunk's operands, never the remaining corpus.  A cold
    # scenario with pending cells is thus generated twice (once above to
    # fingerprint, once here to execute); that is deliberate: generation
    # is cheap next to simulation, warm processes skip the first build
    # through the fingerprint memo, and the alternative — retaining every
    # pending operand from the keying loop — scales peak memory with the
    # whole un-run grid.
    last_use = {cell.scenario.name: position
                for position, (cell, _, _) in enumerate(pending)}
    matrices: dict[str, CSRMatrix] = {}
    attempted = 0
    failed_cells: list[str] = []
    while attempted < budget:
        batch = pending[attempted:min(attempted + chunk, budget)]
        for name in {cell.scenario.name for cell, _, _ in batch}:
            if name not in matrices:
                matrices[name] = corpus.get_scenario(name).build()
        reports = runner.run_engine_many(
            [(engine, matrices[cell.scenario.name])
             for cell, engine, _ in batch],
            keys=[key for _, _, key in batch],
            timeout=cell_timeout)
        for (cell, _, key), report in zip(batch, reports):
            if report is None:
                # Timed out (or crashed) under cell_timeout: leave the
                # cell unrecorded so a resume re-attempts it, and carry on
                # with the rest of the shard.
                failed_cells.append(cell.cell_id)
                continue
            store.append(SweepRecord(
                sweep_id=spec.sweep_id,
                cell_index=cell.index,
                scenario=cell.scenario.name,
                engine=cell.engine,
                config_label=cell.config_label,
                key=key,
                report=report.to_dict(),
            ))
        attempted += len(batch)
        # Free operands whose last pending cell has now run; memory only
        # shrinks as the (scenario-contiguous) pending list drains.
        for name in [name for name, position in last_use.items()
                     if position < attempted]:
            del matrices[name]
            del last_use[name]

    summary = SweepRunSummary(
        sweep_id=spec.sweep_id,
        shard_index=shard_index,
        shard_count=shard_count,
        cells_grid=len(cells),
        cells_shard=len(mine),
        executed=attempted - len(failed_cells),
        replayed=replayed,
        remaining=len(pending) - attempted,
        failed=len(failed_cells),
        failed_cells=tuple(failed_cells),
    )
    return summary, store


# ----------------------------------------------------------------------
# Summarising stores
# ----------------------------------------------------------------------
def group_reports(records: list[SweepRecord], *,
                  reports: dict[str, CostReport] | None = None
                  ) -> dict[tuple[str, str], list[CostReport]]:
    """Records' reports grouped by ``(engine, config label)``.

    Group order follows first appearance, which for canonical (merged)
    records is the sweep's engine/config declaration order.  ``reports``
    accepts a precomputed :func:`~repro.sweeps.store.records_to_reports`
    mapping so callers that also need the per-cell reports deserialise
    each record only once.
    """
    if reports is None:
        reports = records_to_reports(records)
    groups: dict[tuple[str, str], list[CostReport]] = {}
    for record in records:
        groups.setdefault((record.engine, record.config_label),
                          []).append(reports[record.report_key])
    return groups


def summarise_groups(groups: dict[tuple[str, str], list[CostReport]], *,
                     title: str = "sweep summary") -> Table:
    """Per-(engine, config) summary table of grouped reports.

    The Figure 17 quantities — geomean GFLOP/s and total DRAM bytes — plus
    modelled runtime and headline energy, one row per grid column.
    """
    table = Table(
        title=title,
        columns=["engine", "config", "cells", "geomean GFLOP/s",
                 "DRAM [B]", "runtime [s]", "energy [J]"],
    )
    for (engine, label), reports in groups.items():
        table.add_row(
            engine, label, len(reports),
            geomean_gflops(reports),
            sum(report.dram_bytes for report in reports),
            sum(report.runtime_seconds for report in reports),
            sum(report.energy_joules for report in reports),
        )
    return table


def summarise_records(records: list[SweepRecord], *,
                      title: str = "sweep summary") -> Table:
    """Per-(engine, config) summary table of a (merged) result store."""
    return summarise_groups(group_reports(records), title=title)


#: Floor applied to per-report GFLOP/s before the log — the same floor
#: :func:`~repro.experiments.designspace.geomean_gflops` applies, so the
#: streamed geomean matches the list-based one bit for bit.
_GEOMEAN_FLOOR = 1e-12


def summarise_store_file(path: str | os.PathLike, *,
                         sweep_id: str | None = None,
                         title: str = "sweep summary") -> Table:
    """Streamed per-(engine, config) summary of a store file.

    Produces the same table as ``summarise_records(ResultStore(path)
    .records)`` but accumulates only per-group scalars (count, summed log
    GFLOP/s, DRAM bytes, runtime, energy) while reading the JSONL line by
    line — one record lives at a time, so million-cell stores summarise in
    bounded memory.  The accumulation order equals the record order, so
    every float sum matches the list-based path exactly.

    Args:
        path: the (merged, canonical) store file.
        sweep_id: summarise only this sweep's records; ``None`` requires
            the store to hold a single sweep (as
            :func:`~repro.sweeps.store.require_single_sweep` does).
    """
    import math

    from repro.sweeps.store import iter_records

    # acc = [cells, sum(log gflops), dram bytes, runtime, energy]
    groups: dict[tuple[str, str], list] = {}
    seen_sweeps: set[str] = set()
    for record in iter_records(path):
        if sweep_id is not None and record.sweep_id != sweep_id:
            continue
        seen_sweeps.add(record.sweep_id)
        if len(seen_sweeps) > 1:
            raise ValueError(
                f"records span multiple sweeps "
                f"({', '.join(sorted(seen_sweeps))}); filter by sweep_id "
                f"before keying or summarising them"
            )
        report = record.cost_report()
        acc = groups.setdefault((record.engine, record.config_label),
                                [0, 0.0, 0, 0.0, 0.0])
        acc[0] += 1
        acc[1] += math.log(max(report.gflops, _GEOMEAN_FLOOR))
        acc[2] += report.dram_bytes
        acc[3] += report.runtime_seconds
        acc[4] += report.energy_joules

    table = Table(
        title=title,
        columns=["engine", "config", "cells", "geomean GFLOP/s",
                 "DRAM [B]", "runtime [s]", "energy [J]"],
    )
    for (engine, label), acc in groups.items():
        cells, log_sum, dram, runtime, energy = acc
        table.add_row(engine, label, cells, math.exp(log_sum / cells),
                      dram, runtime, energy)
    return table
