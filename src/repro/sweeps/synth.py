"""Deterministic synthetic stores, for benchmarks and CI at scale.

Real million-cell stores take hours of simulation to produce; the index
and compaction machinery still has to be *measured* at that scale.  This
module writes a store of any size in seconds: valid
``store_version``/``schema_version`` lines whose reports are fully formed
:class:`~repro.metrics.report.CostReport` payloads with
pseudo-random-but-deterministic metrics (same ``seed`` → byte-identical
store), so every real code path — eager load, lazy hydration, streamed
summarise, index rebuild, compaction, canonical merge — runs exactly as
it would on sweep output.

``dirty=True`` additionally appends superseded duplicate records and a
torn tail fragment, producing the store a crash-riddled multi-writer run
would leave behind — the input the CI compaction/merge-parity check
wants.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

from repro.metrics.report import CostReport
from repro.sweeps.store import SweepRecord

#: The synthetic grid's engine/config columns (two simulated SpArch
#: design points, two baselines — the shape real sweeps have).
ENGINE_CONFIGS = (
    ("sparch", "table1"),
    ("sparch", "half-merge"),
    ("mkl", "-"),
    ("hash", "-"),
)

DEFAULT_SWEEP_ID = "synth-sweep"


def synthetic_record(position: int, *, sweep_id: str = DEFAULT_SWEEP_ID,
                     seed: int = 0) -> SweepRecord:
    """The ``position``-th synthetic record (deterministic in ``seed``)."""
    engine, config_label = ENGINE_CONFIGS[position % len(ENGINE_CONFIGS)]
    scenario = f"synth/{position // len(ENGINE_CONFIGS):06d}"
    rng = random.Random(f"{seed}:{position}")
    multiplications = rng.randrange(10**6, 10**9)
    additions = int(multiplications * rng.uniform(0.6, 0.95))
    runtime = (multiplications + additions) / rng.uniform(1e9, 2e10)
    traffic = ({"total": rng.randrange(10**6, 10**9)}
               if config_label == "-" else
               {"matrix_a_read": rng.randrange(10**5, 10**8),
                "matrix_b_read": rng.randrange(10**5, 10**8),
                "partial_write": rng.randrange(10**5, 10**8),
                "partial_read": rng.randrange(10**5, 10**8),
                "output_write": rng.randrange(10**5, 10**8)})
    report = CostReport(
        engine=engine,
        kind="baseline" if config_label == "-" else "simulation",
        backend="synthetic",
        cycles=0 if config_label == "-" else rng.randrange(10**5, 10**8),
        runtime_seconds=runtime,
        multiplications=multiplications,
        additions=additions,
        bookkeeping_ops=rng.randrange(10**4, 10**7),
        comparator_ops=0 if config_label == "-" else rng.randrange(10**7),
        output_nnz=rng.randrange(10**4, 10**7),
        traffic=traffic,
        energy={"multiplier": rng.uniform(1e-4, 1e-2),
                "merger": rng.uniform(1e-4, 1e-2),
                "dram": rng.uniform(1e-3, 1e-1)},
        energy_joules=rng.uniform(1e-3, 1e-1),
        clock_hz=1e9,
        peak_bandwidth_bytes_per_cycle=128.0,
        extras={"synthetic": 1.0},
        detail={"generator": "repro.sweeps.synth", "seed": seed,
                "position": position},
    )
    return SweepRecord(
        sweep_id=sweep_id,
        cell_index=position,
        scenario=scenario,
        engine=engine,
        config_label=config_label,
        key=f"synth:{seed}:{position:08d}",
        report=report.to_dict(),
    )


def write_synthetic_store(path: str | os.PathLike, cells: int, *,
                          sweep_id: str = DEFAULT_SWEEP_ID, seed: int = 0,
                          dirty: bool = False, index: bool = True) -> int:
    """Write a ``cells``-cell synthetic store file; returns bytes written.

    Args:
        path: target JSONL file (overwritten).
        cells: number of distinct grid cells to record.
        sweep_id: sweep id stamped on every record.
        seed: metric-generator seed — same seed, byte-identical store.
        dirty: append superseded duplicates (one per 100 cells) and a
            torn final-line fragment, simulating crash-riddled
            multi-writer history for compaction tests.
        index: build the sqlite sidecar index after writing (one rebuild
            now instead of a scan on first open).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as sink:
        chunk: list[str] = []
        for position in range(cells):
            chunk.append(synthetic_record(position, sweep_id=sweep_id,
                                          seed=seed).to_line())
            if len(chunk) >= 1024:
                sink.write("".join(chunk))
                chunk.clear()
        if dirty:
            for position in range(0, cells, 100):
                chunk.append(synthetic_record(position, sweep_id=sweep_id,
                                              seed=seed).to_line())
            if cells:
                torn = synthetic_record(cells - 1, sweep_id=sweep_id,
                                        seed=seed).to_line()
                chunk.append(torn[:max(1, len(torn) // 2)])
        sink.write("".join(chunk))
    if index:
        from repro.sweeps.index import IndexUnavailable, SweepIndex, drop_index

        try:
            store_index = SweepIndex(path)
            try:
                store_index.rebuild()
            finally:
                store_index.close()
        except IndexUnavailable:
            drop_index(path)
    return path.stat().st_size
