"""Segment compaction: rewrite a store dropping dead bytes, atomically.

A long-lived store accumulates bytes that no reader will ever use:

* **superseded duplicates** — concurrent shard writers or fabric retries
  landing whole duplicate records of a cell (loading and merging already
  keep only the first);
* **torn tails** — half-written final lines left by kills, terminated by
  the next append and skipped forever after;
* **stale layouts** — lines from older ``store_version`` / report
  ``schema_version`` revisions, rotated out by recomputation.

:func:`compact_store` streams the JSONL once, keeps each cell's *first*
valid record (the same first-wins rule the eager loader applies, so the
surviving record set is exactly what loading would have produced),
re-serialises it through :meth:`~repro.sweeps.store.SweepRecord.to_line`,
and atomically replaces the store via tmp-file + ``os.replace`` — a
reader or a kill at any instant sees either the old segment or the new
one, never a mixture.  Afterwards the sqlite sidecar is rebuilt with its
**generation counter** bumped, telling watchers and lazy readers that
rowids and byte offsets were reassigned.

The guarantee the property tests pin down (DESIGN.md §9): the canonical
merge of a compacted store is **byte-identical** to the canonical merge
of the uncompacted original, under every chaos-harness fault schedule.
Compaction never changes what a store *means* — only how many bytes say
it.

Run compaction quiesced (no live writers): a record appended between the
scan and the ``os.replace`` would be dropped with the old segment.  The
CLI (``python -m repro.sweeps compact``) is the intended entry point,
after a sweep or between fabric runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.sweeps.index import IndexUnavailable, SweepIndex, drop_index
from repro.sweeps.store import parse_line


@dataclass(frozen=True)
class CompactionStats:
    """Outcome of one :func:`compact_store` run.

    Attributes:
        path: the compacted store file.
        records: surviving records (one per cell).
        bytes_before / bytes_after: segment size either side of the
            rewrite.
        dropped_duplicates: whole valid records dropped because an
            earlier record of their cell survived.
        dropped_invalid: lines dropped as unparseable — torn tails,
            blank lines, stale layouts/schemas.
        generation: the store's compaction generation after the rewrite
            (``None`` when sqlite was unavailable and no sidecar could
            record it).
    """

    path: str
    records: int
    bytes_before: int
    bytes_after: int
    dropped_duplicates: int
    dropped_invalid: int
    generation: int | None

    def render(self) -> str:
        """One status line, e.g. for the CLI."""
        saved = self.bytes_before - self.bytes_after
        line = (f"[compact {self.path}] {self.records} records, "
                f"{self.bytes_before} -> {self.bytes_after} bytes "
                f"({saved} reclaimed), {self.dropped_duplicates} duplicate "
                f"and {self.dropped_invalid} invalid lines dropped")
        if self.generation is not None:
            line += f", generation {self.generation}"
        return line


def compact_store(path: str | os.PathLike, *,
                  fsync: bool = True) -> CompactionStats:
    """Rewrite a store segment keeping one valid record per cell.

    Args:
        path: the JSONL store file (must exist — compacting a store that
            is not there would quietly "succeed" on a typo'd path).
        fsync: flush the new segment to stable storage before the atomic
            rename (on by default: compaction is explicitly invoked
            maintenance, and losing the *whole* rewritten segment to a
            power cut — unlike losing one appended record — is not
            recomputed-away cheaply).

    Returns:
        A :class:`CompactionStats` describing what survived and what was
        dropped.

    Raises:
        FileNotFoundError: when the store file does not exist.
        ValueError: when two records of one cell carry different
            fingerprints or canonical indices — a mixed store is refused,
            exactly as loading and merging refuse it, and the original
            file is left untouched.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"result store not found: {path}")
    bytes_before = path.stat().st_size

    tmp = Path(f"{path}.compact.tmp")
    cells: dict[tuple[str, str, str, str], tuple[str, int]] = {}
    dropped_duplicates = 0
    dropped_invalid = 0
    try:
        with open(path, "rb") as source, open(tmp, "w",
                                              encoding="utf-8") as sink:
            for raw in source:
                record = parse_line(raw.decode("utf-8", errors="replace"))
                if record is None:
                    dropped_invalid += 1
                    continue
                existing = cells.get(record.cell)
                if existing is None:
                    cells[record.cell] = (record.key, record.cell_index)
                    sink.write(record.to_line())
                elif existing == (record.key, record.cell_index):
                    dropped_duplicates += 1
                else:
                    raise ValueError(
                        f"store {path} holds conflicting records for cell "
                        f"{'|'.join(record.cell[1:])!r} of sweep "
                        f"{record.cell[0]!r} — it mixes results written "
                        f"under different parameters or spec revisions"
                    )
            sink.flush()
            if fsync:
                os.fsync(sink.fileno())
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise

    os.replace(tmp, path)
    if fsync:
        # Persist the rename itself (best effort — not every filesystem
        # supports opening a directory for fsync).
        try:
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass

    generation: int | None = None
    try:
        index = SweepIndex(path)
        try:
            index.rebuild(bump_generation=True)
            generation = index.generation
        finally:
            index.close()
    except IndexUnavailable:
        # No index is better than a stale one; the JSONL stays complete.
        drop_index(path)

    return CompactionStats(
        path=os.fspath(path),
        records=len(cells),
        bytes_before=bytes_before,
        bytes_after=path.stat().st_size,
        dropped_duplicates=dropped_duplicates,
        dropped_invalid=dropped_invalid,
        generation=generation,
    )
