"""Command-line runner: ``python -m repro.sweeps <command> [...]``.

Three subcommands cover the sweep-as-a-service lifecycle:

* ``run SWEEP --store out.jsonl [--shard i/n]`` — execute (one shard of) a
  registered sweep, appending schema-versioned cost reports to a resumable
  JSONL result store.  Re-running with the same store re-executes only
  unfinished cells; ``--jobs``/``--cache-dir`` reuse the experiment
  runner's fan-out and disk memo.
* ``merge --out merged.jsonl SHARD...`` — canonically merge shard stores
  (sorted by cell order, one record per cell; conflicting records of one
  cell — stores written under different parameters — are refused); the
  merged bytes are independent of shard count and resume history.  The
  merge streams the JSONL line by line (only a coordinate index in
  memory), so paper-scale million-cell stores merge within bounded memory.
* ``summarise STORE...`` — print the per-(engine, config) summary table
  (geomean GFLOP/s, DRAM, runtime, energy) of one or more stores; a
  fabric sidecar's quarantined cells are reported alongside.  Served
  from the sqlite sidecar index when one is current (zero JSONL bytes
  read), built on the spot otherwise, and streamed line by line as a
  last resort.  ``--where engine=sparch,scenario=NAME --top K --sort
  METRIC`` switches to a per-cell listing — equality filters plus top-k
  over any recorded metric, answered entirely from the index.
* ``watch STORE`` — live progress view over a growing store (done /
  pending / failed, rows/sec, ETA); tails the sidecar index when it is
  current, incremental byte reads otherwise — safe to run next to a
  shard run or a fabric fleet.
* ``compact STORE...`` — rewrite a store segment atomically, dropping
  superseded duplicate records and torn tails; the canonical merge of
  the compacted store is byte-identical to the uncompacted one.
* ``synth STORE --cells N`` — write a deterministic synthetic store
  (valid records, optional crash debris with ``--dirty``) for
  benchmarks and CI at scales real sweeps take hours to produce.

``--list`` (or no arguments) prints the registered sweeps and corpora.
"""

from __future__ import annotations

import argparse
import sys

from repro.corpus.registry import get_corpus, list_corpora
from repro.experiments.runner import ExperimentRunner
from repro.sweeps.driver import run_sweep, summarise_store_file
from repro.sweeps.index import METRIC_COLUMNS
from repro.sweeps.registry import get_sweep, list_sweeps
from repro.sweeps.spec import enumerate_cells
from repro.sweeps.store import iter_records, merge_files_to

#: CLI-friendly aliases for ``--where`` filter columns.
_WHERE_ALIASES = {"config": "config_label", "sweep": "sweep_id"}


def _parse_shard(value: str) -> tuple[int, int]:
    """Parse ``"i/n"`` into ``(shard_index, shard_count)``."""
    try:
        index_text, count_text = value.split("/", 1)
        shard_index, shard_count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected SHARD as i/n (e.g. 0/2), got {value!r}"
        ) from None
    if shard_count < 1 or not 0 <= shard_index < shard_count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 0 <= i < n, got {value!r}"
        )
    return shard_index, shard_count


def _parse_where(value: str) -> dict[str, str]:
    """Parse ``k=v[,k=v...]`` filter clauses into a column→value dict."""
    filters: dict[str, str] = {}
    for clause in value.split(","):
        if "=" not in clause:
            raise argparse.ArgumentTypeError(
                f"expected --where clauses as column=value, got {clause!r}"
            )
        column, _, filter_value = clause.partition("=")
        column = column.strip()
        filters[_WHERE_ALIASES.get(column, column)] = filter_value.strip()
    return filters


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps",
        description="Sharded, resumable corpus sweeps over the engine "
                    "registry.",
    )
    parser.add_argument("--list", action="store_true",
                        help="list the registered sweeps and corpora and "
                             "exit")
    commands = parser.add_subparsers(dest="command")

    run = commands.add_parser(
        "run", help="execute (one shard of) a registered sweep")
    run.add_argument("sweep", help="sweep id (see --list)")
    run.add_argument("--store", default=None, metavar="PATH",
                     help="resumable JSONL result store (default: "
                          "in-memory only)")
    run.add_argument("--shard", type=_parse_shard, default=(0, 1),
                     metavar="I/N",
                     help="own cells with index %% N == I (default 0/1)")
    run.add_argument("--max-rows", type=int, default=None,
                     help="cap the corpus scenario dimensions")
    run.add_argument("--max-cells", type=int, default=None,
                     help="stop after executing this many cells "
                          "(time-boxed incremental runs)")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the engine fan-out")
    run.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="share the experiment runner's on-disk memo")
    run.add_argument("--engine",
                     choices=("scalar", "vectorized", "streaming"),
                     default=None,
                     help="force an execution backend (backend-specific "
                          "fingerprints, as in the experiments CLI)")
    run.add_argument("--cell-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-cell wall-clock budget: a hung engine "
                          "marks its cell failed-retryable instead of "
                          "blocking the shard")

    merge = commands.add_parser(
        "merge", help="canonically merge shard stores into one")
    merge.add_argument("stores", nargs="+", metavar="STORE",
                       help="shard store files to merge")
    merge.add_argument("--out", required=True, metavar="PATH",
                       help="merged store destination")

    summarise = commands.add_parser(
        "summarise", help="print the per-(engine, config) summary of "
                          "one or more stores")
    summarise.add_argument("stores", nargs="+", metavar="STORE",
                           help="store files to summarise (merged first)")
    summarise.add_argument("--where", type=_parse_where, default=None,
                           metavar="K=V[,K=V...]",
                           help="list individual cells matching equality "
                                "filters (engine=..., scenario=..., "
                                "config=..., sweep=...) instead of the "
                                "grouped summary")
    summarise.add_argument("--top", type=int, default=None, metavar="K",
                           help="list only the K best cells by --sort "
                                "(implies the per-cell listing)")
    summarise.add_argument("--sort", choices=METRIC_COLUMNS,
                           default="gflops", metavar="METRIC",
                           help="metric ordering the per-cell listing "
                                f"({', '.join(METRIC_COLUMNS)}; "
                                "default gflops)")

    compact = commands.add_parser(
        "compact", help="rewrite a store atomically, dropping superseded "
                        "duplicates and torn tails (merge output stays "
                        "byte-identical)")
    compact.add_argument("stores", nargs="+", metavar="STORE",
                         help="store files to compact in place")
    compact.add_argument("--no-fsync", action="store_true",
                         help="skip flushing the rewritten segment to "
                              "stable storage before the atomic rename")

    synth = commands.add_parser(
        "synth", help="write a deterministic synthetic store (benchmarks "
                      "and CI at paper scale)")
    synth.add_argument("store", metavar="PATH",
                       help="store file to write (overwritten)")
    synth.add_argument("--cells", type=int, default=1000,
                       help="grid cells to record (default 1000)")
    synth.add_argument("--seed", type=int, default=0,
                       help="metric-generator seed (same seed, "
                            "byte-identical store)")
    synth.add_argument("--sweep-id", default=None,
                       help="sweep id stamped on the records")
    synth.add_argument("--dirty", action="store_true",
                       help="append superseded duplicates and a torn tail "
                            "(compaction-test input)")
    synth.add_argument("--no-index", action="store_true",
                       help="skip building the sqlite sidecar index")

    watch = commands.add_parser(
        "watch", help="live progress view over a growing store")
    watch.add_argument("store", metavar="STORE",
                       help="store file to watch (may not exist yet)")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between polls (default 2)")
    watch.add_argument("--iterations", type=int, default=None,
                       help="stop after N samples even if unfinished "
                            "(one-shot status checks, CI)")
    return parser


def _print_listing() -> None:
    print("registered sweeps:")
    for sweep_id in list_sweeps():
        spec = get_sweep(sweep_id)
        cells = len(enumerate_cells(spec))
        print(f"{sweep_id:>14}  {spec.title} "
              f"[corpus {spec.corpus}, {cells} cells]")
    print()
    print("registered corpora:")
    for corpus_id in list_corpora():
        spec = get_corpus(corpus_id)
        print(f"{corpus_id:>14}  {spec.title} "
              f"[{len(spec.scenarios)} scenarios]")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list or args.command is None:
        _print_listing()
        return 0

    if args.command == "run":
        spec = get_sweep(args.sweep)
        runner = ExperimentRunner(cache_dir=args.cache_dir, jobs=args.jobs,
                                  engine=args.engine)
        shard_index, shard_count = args.shard
        summary, store = run_sweep(
            spec, store=args.store, runner=runner,
            shard_index=shard_index, shard_count=shard_count,
            max_rows=args.max_rows, max_cells=args.max_cells,
            cell_timeout=args.cell_timeout)
        print(summary.render())
        print(f"[runner] {runner.cache_misses} points computed, "
              f"{runner.cache_hits} reused from cache")
        if store.path is not None:
            print(f"[store] {len(store)} records in {store.path}")
        return 0

    if args.command == "watch":
        from repro.sweeps.watch import watch_store

        watch_store(args.store, interval=args.interval,
                    iterations=args.iterations)
        return 0

    if args.command == "merge":
        # Streaming merge: only the coordinate index is held in memory, so
        # million-cell shard stores merge without materialising reports.
        count = merge_files_to(args.stores, args.out)
        print(f"[merge] {count} records from {len(args.stores)} "
              f"store(s) -> {args.out}")
        return 0

    if args.command == "compact":
        from repro.sweeps.compact import compact_store

        for store_path in args.stores:
            print(compact_store(store_path,
                                fsync=not args.no_fsync).render())
        return 0

    if args.command == "synth":
        from repro.sweeps.synth import DEFAULT_SWEEP_ID, write_synthetic_store

        num_bytes = write_synthetic_store(
            args.store, args.cells,
            sweep_id=args.sweep_id or DEFAULT_SWEEP_ID, seed=args.seed,
            dirty=args.dirty, index=not args.no_index)
        print(f"[synth] {args.cells} cells ({num_bytes} bytes) -> "
              f"{args.store}")
        return 0

    # "summarise" — served from the sqlite sidecar index whenever sqlite
    # is usable: a single store with a current index answers without
    # reading a JSONL byte; anything else (stale index, several shards)
    # pays one scan to merge/build, then queries the index.  When sqlite
    # itself is unavailable, the old fully-streamed path still answers.
    import os
    import tempfile

    from repro.sweeps.index import (
        IndexUnavailable,
        cells_table,
        ensure_index,
        open_fresh_index,
    )

    for store_path in args.stores:
        if not os.path.isfile(store_path):
            raise FileNotFoundError(
                f"result store not found: {store_path}")
    listing = args.where is not None or args.top is not None

    def _summarise_indexed(store_index) -> None:
        if listing:
            rows = store_index.query_cells(where=args.where,
                                           sort=args.sort, limit=args.top)
            clauses = " and ".join(f"{column}={value}" for column, value
                                   in (args.where or {}).items())
            title = f"top {len(rows)} cells by {args.sort}"
            if clauses:
                title += f" where {clauses}"
            print(cells_table(rows, title=title).render())
            print()
            return
        counts = store_index.sweep_counts()
        for sweep_id in sorted(counts):
            print(store_index.summarise(
                sweep_id=sweep_id,
                title=(f"sweep {sweep_id!r} summary "
                       f"({counts[sweep_id]} cells)")).render())
            print()

    store_index = None
    if len(args.stores) == 1:
        store_index = open_fresh_index(args.stores[0])
        if store_index is None:
            try:
                store_index = ensure_index(args.stores[0])
            except IndexUnavailable:
                store_index = None
    if store_index is not None:
        try:
            _summarise_indexed(store_index)
        finally:
            store_index.close()
    else:
        # Several shards (or no usable single-store index): merge
        # canonically into a temporary store first, as before.
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".jsonl", prefix="repro-sweep-merge-",
            delete=False)
        handle.close()
        try:
            merge_files_to(args.stores, handle.name)
            try:
                store_index = ensure_index(handle.name)
            except IndexUnavailable:
                store_index = None
            if store_index is not None:
                try:
                    _summarise_indexed(store_index)
                finally:
                    store_index.close()
            elif listing:
                raise RuntimeError(
                    "--where/--top/--sort need the sqlite sidecar index, "
                    "which is unavailable on this system")
            else:
                # Fully streamed fallback: one table per sweep, line by
                # line, bounded memory end to end.
                cells_per_sweep: dict[str, int] = {}
                for record in iter_records(handle.name):
                    cells_per_sweep[record.sweep_id] = (
                        cells_per_sweep.get(record.sweep_id, 0) + 1)
                for sweep_id in sorted(cells_per_sweep):
                    print(summarise_store_file(
                        handle.name, sweep_id=sweep_id,
                        title=(f"sweep {sweep_id!r} summary "
                               f"({cells_per_sweep[sweep_id]} cells)")
                    ).render())
                    print()
        finally:
            from repro.sweeps.index import drop_index

            drop_index(handle.name)
            os.unlink(handle.name)

    # A fabric-run store carries a sidecar with quarantine post-mortems;
    # a summary that silently omitted poisoned cells would misread as
    # complete, so report them here.
    from repro.fabric.coordinator import read_sidecar

    for store_path in args.stores:
        sidecar = read_sidecar(store_path)
        if not sidecar or not sidecar.get("quarantined"):
            continue
        print(f"[fabric] {store_path}: "
              f"{len(sidecar['quarantined'])} quarantined cell(s)")
        for cell in sidecar["quarantined"]:
            print(f"  cell {cell['cell_index']} after "
                  f"{cell['attempts']} attempts: {cell['error']}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
