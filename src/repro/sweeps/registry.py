"""Registry mapping sweep ids to frozen :class:`SweepSpec` declarations.

Mirrors the engine/workload/corpus registries: frozen entries, id lookup
with a helpful unknown-id error.  The registered sweeps re-express the
paper's evaluation grids over the corpus layer:

    smoke          tiny 2-engine sweep for CI shard jobs and tests
    fig17-dse      the Figure 17 design-space grid (via
                   repro.experiments.designspace.fig17_grid)
    engines-suite  every registered engine over the DSE benchmark subset
    rmat-sweep     SpArch vs MKL over the Figure 14-style rMAT grid
    paper-scale    SpArch (streaming core) over the 10^5-row suite rung
                   with unscaled Table I buffers
"""

from __future__ import annotations

from repro.core.config import SpArchConfig
from repro.engines.registry import list_engines
from repro.experiments.designspace import fig17_grid, flatten_grid
from repro.sweeps.spec import SweepSpec

#: Every registered sweep, smallest first.
SWEEPS: tuple[SweepSpec, ...] = (
    SweepSpec(
        "smoke",
        "Tiny SpArch + MKL sweep over the smoke corpus (CI shard job)",
        corpus="smoke",
        engines=("sparch", "mkl"),
        configs=(("table1", SpArchConfig()),),
    ),
    SweepSpec(
        "fig17-dse",
        "Figure 17 design-space grid over the DSE benchmark subset",
        corpus="suite-small",
        engines=("sparch",),
        configs=flatten_grid(fig17_grid()),
    ),
    SweepSpec(
        "engines-suite",
        "Every registered engine over the DSE benchmark subset",
        corpus="suite-small",
        engines=tuple(list_engines()),
        configs=(("table1", SpArchConfig()),),
    ),
    SweepSpec(
        "rmat-sweep",
        "SpArch vs MKL over the Figure 14-style rMAT grid",
        corpus="rmat-grid",
        engines=("sparch", "mkl"),
        configs=(("table1", SpArchConfig()),),
    ),
    SweepSpec(
        "paper-scale",
        "SpArch streaming core over the 10^5-row suite rung, unscaled "
        "Table I buffers",
        corpus="paper-scale",
        engines=("sparch",),
        # The backend choice does not enter the cell fingerprint (see
        # repro.core.config.BACKEND_FIELDS), so these cells share the memo
        # with any other unscaled-Table-I run of the same scenarios.
        configs=(("table1-streaming", SpArchConfig(engine="streaming")),),
    ),
)

_BY_ID = {spec.sweep_id: spec for spec in SWEEPS}


def list_sweeps() -> list[str]:
    """Return the registered sweep ids, smallest first."""
    return [spec.sweep_id for spec in SWEEPS]


def get_sweep(sweep_id: str) -> SweepSpec:
    """Look up one sweep by id; raises ``KeyError`` with suggestions."""
    try:
        return _BY_ID[sweep_id]
    except KeyError:
        raise KeyError(
            f"unknown sweep {sweep_id!r}; known sweeps: "
            f"{', '.join(list_sweeps())}"
        ) from None
