"""Frozen sweep declarations: corpus × engines × SpArch configurations.

A :class:`SweepSpec` names a grid the way the paper's evaluation figures
do — a scenario corpus (:mod:`repro.corpus`), a set of engines by registry
name, and a set of labelled SpArch configurations for the simulation
engine — and :func:`enumerate_cells` flattens it into a *canonical cell
order*.  Everything downstream (shard assignment, resume bookkeeping, the
merged result store's on-disk order) is defined in terms of that order, so
every shard, resumed run and merge derives the identical grid from the
frozen spec alone.

Baseline engines are platform models with no architectural configuration,
so they contribute one cell per scenario (config label ``"-"``); the
simulation engine contributes one cell per ``(scenario, config)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SpArchConfig
from repro.corpus.registry import get_corpus
from repro.corpus.spec import CorpusSpec, Scenario
from repro.engines.registry import get_engine_entry

#: Config label recorded on cells of engines that take no SpArch config.
NO_CONFIG_LABEL = "-"


def cell_key(scenario: str, engine: str, config_label: str) -> str:
    """The human-readable cell/report key, ``scenario|engine|config``.

    The one definition of the format — used by :attr:`SweepCell.cell_id`,
    the result store's report keying and the summary grouping alike.
    """
    return f"{scenario}|{engine}|{config_label}"


@dataclass(frozen=True)
class SweepSpec:
    """One registered sweep: a corpus crossed with engines and configs.

    Attributes:
        sweep_id: registry id ("fig17-dse", "smoke", ...).
        title: human-readable description.
        corpus: corpus registry id naming the scenario family.
        engines: engine registry names, in presentation order.
        configs: labelled SpArch configurations applied to every
            ``kind == "simulation"`` engine (baselines ignore them).
    """

    sweep_id: str
    title: str
    corpus: str
    engines: tuple[str, ...]
    configs: tuple[tuple[str, SpArchConfig], ...] = (
        ("table1", SpArchConfig()),)

    def __post_init__(self) -> None:
        if not self.engines:
            raise ValueError(f"sweep {self.sweep_id!r} declares no engines")
        if len(set(self.engines)) != len(self.engines):
            raise ValueError(f"sweep {self.sweep_id!r} repeats an engine")
        if not self.configs:
            raise ValueError(f"sweep {self.sweep_id!r} declares no configs")
        labels = [label for label, _ in self.configs]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"sweep {self.sweep_id!r} has duplicate config labels"
            )
        if NO_CONFIG_LABEL in labels:
            raise ValueError(
                f"config label {NO_CONFIG_LABEL!r} is reserved for "
                f"engines without a configuration"
            )
        for name in self.engines:
            get_engine_entry(name)  # raises KeyError for unknown engines

    # ------------------------------------------------------------------
    def corpus_spec(self, *, max_rows: int | None = None) -> CorpusSpec:
        """Resolve the corpus (optionally capped at ``max_rows``)."""
        return get_corpus(self.corpus).scaled(max_rows)

    def config_for(self, label: str) -> SpArchConfig | None:
        """The config registered under ``label`` (``None`` for ``"-"``)."""
        if label == NO_CONFIG_LABEL:
            return None
        for config_label, config in self.configs:
            if config_label == label:
                return config
        raise KeyError(
            f"unknown config label {label!r} in sweep {self.sweep_id!r}"
        )


@dataclass(frozen=True)
class SweepCell:
    """One ``(scenario, engine, config)`` point of a sweep grid.

    Attributes:
        index: position in the sweep's canonical cell order — the basis of
            deterministic shard assignment and of the merged store's order.
        scenario: the corpus scenario providing the (squared) operand.
        engine: engine registry name.
        config_label: label of the SpArch config (``"-"`` for baselines).
        config: the configuration itself (``None`` for baselines).
    """

    index: int
    scenario: Scenario
    engine: str
    config_label: str
    config: SpArchConfig | None

    @property
    def cell_id(self) -> str:
        """Human-readable cell identity, ``scenario|engine|config``."""
        return cell_key(self.scenario.name, self.engine, self.config_label)


def enumerate_cells(spec: SweepSpec, *, max_rows: int | None = None
                    ) -> list[SweepCell]:
    """Flatten a sweep into its canonical cell order.

    Scenario-major, then engine in spec order, then config in spec order —
    deterministic for a given spec, so ``--shard i/n`` partitions the same
    grid identically in every process.
    """
    cells: list[SweepCell] = []
    for scenario in spec.corpus_spec(max_rows=max_rows).scenarios:
        for engine in spec.engines:
            if get_engine_entry(engine).kind == "simulation":
                for label, config in spec.configs:
                    cells.append(SweepCell(len(cells), scenario, engine,
                                           label, config))
            else:
                cells.append(SweepCell(len(cells), scenario, engine,
                                       NO_CONFIG_LABEL, None))
    return cells


def shard_cells(cells: list[SweepCell], shard_index: int, shard_count: int
                ) -> list[SweepCell]:
    """The deterministic slice of ``cells`` owned by one shard.

    Round-robin over the canonical order (cell *i* belongs to shard
    ``i % shard_count``): shards own disjoint cell sets whose union is the
    whole grid, and adjacent (similar-cost) cells spread across shards.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be positive, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    return [cell for cell in cells if cell.index % shard_count == shard_index]
