"""SQLite sidecar index over a JSONL result store: zero-scan summaries.

A million-cell :class:`~repro.sweeps.store.ResultStore` is cheap to
*append* to but expensive to *ask*: every open, resume, ``summarise`` and
``watch`` pass used to re-parse the whole JSONL.  This module keeps a
**derived** sqlite database next to the store file (``<store>.index.sqlite``,
WAL mode) with one row per recorded cell:

* the cell coordinates (``sweep_id``, ``scenario``, ``engine``,
  ``config_label``, canonical ``cell_index``) and the runner fingerprint
  ``key`` — everything resume and grid-consistency checks need;
* the record's ``(offset, length)`` byte range in the JSONL — everything
  lazy hydration needs to read one record without scanning the file;
* denormalised summary scalars (cycles, runtime, GFLOP/s and its log,
  DRAM bytes total and by category, energy, op counts) — everything the
  summary/filter/top-k queries need, so they never touch the JSONL.

The contract (DESIGN.md §9): **the JSONL stays the single source of
truth**.  The index is derivable from it alone, is rebuilt whenever it
cannot prove itself consistent (version mismatch, store truncated below
the indexed high-water mark, rewritten head bytes), and may be deleted at
any time — the next open simply rebuilds it.  Nothing byte-parity-critical
(canonical merges, compaction output) ever reads the index.

Consistency protocol:

* ``meta.hwm`` is the byte offset up to which the JSONL has been ingested
  (whole lines only; a torn tail stays below the mark until its newline
  lands).  ``refresh`` ingests exactly ``[hwm, size)`` — the incremental
  catch-up that makes reopening a huge store cheap.
* ``meta.head_len`` / ``meta.head_hash`` fingerprint the first (up to)
  64 KiB of the indexed prefix.  Appends never change those bytes, so a
  mismatch means the file was rewritten underneath the index (an external
  ``sort``, a hand edit) and the index rebuilds from scratch.
* ``meta.generation`` counts compactions
  (:func:`repro.sweeps.compact.compact_store` bumps it atomically with
  its rebuild); watchers use it to notice that rowids and offsets were
  reassigned.
* every mutation (row inserts + meta update) commits in one
  ``BEGIN IMMEDIATE`` transaction, so a kill mid-append leaves either the
  old or the new state, never a half-indexed record — and a JSONL append
  whose index transaction never ran is simply above ``hwm``, picked up by
  the next catch-up.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import sqlite3
from pathlib import Path
from typing import Iterator

from repro.sweeps.spec import cell_key
from repro.sweeps.store import CellEntry, SweepRecord, parse_line
from repro.utils.reporting import Table

#: Version of the index layout.  Bump on any incompatible schema change;
#: an index from another version silently rebuilds (it is derived data).
INDEX_VERSION = 1

#: Bytes of the indexed prefix fingerprinted against external rewrites.
#: Appends beyond the cap never change the fingerprinted range, so the
#: hash is frozen once the store outgrows it.
HEAD_CAP = 65536

#: Floor applied to per-cell GFLOP/s before the log — the same floor
#: :func:`repro.experiments.designspace.geomean_gflops` applies, so
#: index-served geomeans agree with the scan paths.
GEOMEAN_FLOOR = 1e-12

#: Scalar columns ``summarise --sort`` / ``--where`` may name.
METRIC_COLUMNS = ("gflops", "cycles", "runtime_seconds", "dram_bytes",
                  "energy_joules", "output_nnz", "multiplications",
                  "additions")

#: Coordinate columns ``summarise --where`` may filter on.
WHERE_COLUMNS = ("sweep_id", "scenario", "engine", "config_label", "status")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    sweep_id        TEXT NOT NULL,
    scenario        TEXT NOT NULL,
    engine          TEXT NOT NULL,
    config_label    TEXT NOT NULL,
    cell_index      INTEGER NOT NULL,
    key             TEXT NOT NULL,
    report_key      TEXT NOT NULL,
    offset          INTEGER NOT NULL,
    length          INTEGER NOT NULL,
    status          TEXT NOT NULL DEFAULT 'done',
    cycles          INTEGER NOT NULL,
    runtime_seconds REAL NOT NULL,
    gflops          REAL NOT NULL,
    log_gflops      REAL NOT NULL,
    dram_bytes      INTEGER NOT NULL,
    traffic         TEXT NOT NULL,
    energy_joules   REAL NOT NULL,
    output_nnz      INTEGER NOT NULL,
    multiplications INTEGER NOT NULL,
    additions       INTEGER NOT NULL,
    UNIQUE (sweep_id, scenario, engine, config_label)
);
CREATE INDEX IF NOT EXISTS cells_by_sweep ON cells (sweep_id, cell_index);
-- Covering index for summarise: the GROUP BY (engine, config_label)
-- aggregation reads every referenced column straight from this index,
-- never touching the wide cells rows (whose traffic blobs dominate the
-- table's bytes) — a million-cell summary stays tens of milliseconds.
CREATE INDEX IF NOT EXISTS cells_summary ON cells (
    sweep_id, engine, config_label, log_gflops, dram_bytes,
    runtime_seconds, energy_joules, cell_index
);
"""


class IndexUnavailable(Exception):
    """The sidecar cannot be opened or maintained (locked dir, corrupt
    beyond repair, read-only filesystem).  Callers fall back to the
    scan paths — the JSONL is always sufficient on its own."""


def index_path(store_path: str | os.PathLike) -> str:
    """The sidecar database written next to a store file."""
    return f"{os.fspath(store_path)}.index.sqlite"


def drop_index(store_path: str | os.PathLike) -> None:
    """Delete a store's sidecar index (and its WAL companions), if any.

    Always safe: the index is derived data and the next open rebuilds it.
    """
    base = index_path(store_path)
    for suffix in ("", "-wal", "-shm"):
        try:
            os.unlink(base + suffix)
        except OSError:
            pass


def _conflict_error(path, cell: tuple[str, str, str, str]) -> ValueError:
    """Same wording as the store loader: a mixed store is refused."""
    return ValueError(
        f"store {path} holds conflicting records for cell "
        f"{'|'.join(cell[1:])!r} of sweep {cell[0]!r} — it mixes results "
        f"written under different parameters or spec revisions"
    )


def summary_columns(report: dict) -> dict:
    """The denormalised scalar columns for one record's report payload.

    Mirrors the :class:`~repro.metrics.report.CostReport` derived-metric
    formulas exactly (``gflops = flops / runtime / 1e9`` over the integer
    op counters) but works on the raw payload dict, so indexing never
    requires a full report deserialisation round trip.
    """
    multiplications = int(report.get("multiplications", 0))
    additions = int(report.get("additions", 0))
    runtime = float(report.get("runtime_seconds", 0.0))
    flops = multiplications + additions
    gflops = flops / runtime / 1e9 if runtime > 0 else 0.0
    traffic = report.get("traffic") or {}
    return {
        "cycles": int(report.get("cycles", 0)),
        "runtime_seconds": runtime,
        "gflops": gflops,
        "log_gflops": math.log(max(gflops, GEOMEAN_FLOOR)),
        "dram_bytes": sum(int(v) for v in traffic.values()),
        "traffic": json.dumps(
            {str(k): int(v) for k, v in traffic.items()}, sort_keys=True),
        "energy_joules": float(report.get("energy_joules", 0.0)),
        "output_nnz": int(report.get("output_nnz", 0)),
        "multiplications": multiplications,
        "additions": additions,
    }


def _row_for(record: SweepRecord, offset: int, length: int) -> tuple:
    columns = summary_columns(record.report)
    return (record.sweep_id, record.scenario, record.engine,
            record.config_label, record.cell_index, record.key,
            record.report_key, offset, length, "done",
            columns["cycles"], columns["runtime_seconds"],
            columns["gflops"], columns["log_gflops"],
            columns["dram_bytes"], columns["traffic"],
            columns["energy_joules"], columns["output_nnz"],
            columns["multiplications"], columns["additions"])


_INSERT = """
INSERT OR IGNORE INTO cells (
    sweep_id, scenario, engine, config_label, cell_index, key, report_key,
    offset, length, status, cycles, runtime_seconds, gflops, log_gflops,
    dram_bytes, traffic, energy_joules, output_nnz, multiplications,
    additions
) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
"""


class SweepIndex:
    """One store's sidecar index: incremental maintenance + queries.

    Args:
        store_path: the JSONL store file the index shadows (the database
            lives at :func:`index_path` next to it).

    Raises:
        IndexUnavailable: when the database cannot be created or opened —
            callers fall back to scanning the JSONL.
    """

    def __init__(self, store_path: str | os.PathLike) -> None:
        self._store_path = Path(store_path)
        self._db_path = Path(index_path(store_path))
        self._conn = self._connect()

    # ------------------------------------------------------------------
    # Connection / schema
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        try:
            self._db_path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self._db_path, timeout=30.0,
                                   isolation_level=None,
                                   check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            return conn
        except sqlite3.Error:
            # A corrupt sidecar is not an error condition — it is derived
            # data.  Drop it and start over; only an unusable location
            # (permissions, exotic filesystems) gives up.
            try:
                drop_index(self._store_path)
                conn = sqlite3.connect(self._db_path, timeout=30.0,
                                       isolation_level=None,
                                       check_same_thread=False)
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.executescript(_SCHEMA)
                return conn
            except (sqlite3.Error, OSError) as exc:
                raise IndexUnavailable(str(exc)) from exc

    def close(self) -> None:
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - close is best effort
            pass

    @property
    def store_path(self) -> Path:
        return self._store_path

    @property
    def db_path(self) -> Path:
        return self._db_path

    # ------------------------------------------------------------------
    # Meta
    # ------------------------------------------------------------------
    def _meta(self) -> dict[str, str]:
        return dict(self._conn.execute("SELECT key, value FROM meta"))

    def _set_meta(self, **values) -> None:
        self._conn.executemany(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            [(key, str(value)) for key, value in values.items()])

    @property
    def generation(self) -> int:
        """Compaction generation counter (0 for a never-compacted store)."""
        return int(self._meta().get("generation", 0))

    @property
    def high_water(self) -> int:
        """Byte offset of the JSONL prefix the index has ingested."""
        return int(self._meta().get("hwm", -1))

    def _store_size(self) -> int:
        try:
            return os.path.getsize(self._store_path)
        except OSError:
            return 0

    def _head_fingerprint(self, hwm: int) -> tuple[int, str]:
        head_len = min(hwm, HEAD_CAP)
        if head_len <= 0:
            return 0, ""
        with open(self._store_path, "rb") as handle:
            head = handle.read(head_len)
        return head_len, hashlib.sha256(head).hexdigest()

    def _head_matches(self, meta: dict[str, str]) -> bool:
        head_len = int(meta.get("head_len", 0))
        if head_len <= 0:
            return True
        if self._store_size() < head_len:
            return False
        try:
            with open(self._store_path, "rb") as handle:
                head = handle.read(head_len)
        except OSError:
            return False
        return hashlib.sha256(head).hexdigest() == meta.get("head_hash", "")

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def is_fresh(self) -> bool:
        """Whether every complete line of the JSONL is already indexed.

        (A torn, newline-less tail fragment keeps ``hwm`` just below the
        file size; the store is still fully indexed in the record sense.)
        """
        meta = self._meta()
        if (meta.get("index_version") != str(INDEX_VERSION)
                or "hwm" not in meta):
            return False
        hwm = int(meta["hwm"])
        size = self._store_size()
        if hwm > size or not self._head_matches(meta):
            return False
        if hwm == size:
            return True
        # Only an unterminated (torn or in-flight) fragment may remain.
        with open(self._store_path, "rb") as handle:
            handle.seek(hwm)
            tail = handle.read(size - hwm)
        return b"\n" not in tail

    def refresh(self) -> None:
        """Bring the index up to date: incremental catch-up, or rebuild.

        Catch-up ingests only ``[hwm, size)``; a rebuild (version change,
        truncated or rewritten store) re-ingests from byte 0.  Raises
        ``ValueError`` for stores holding conflicting records of one cell
        (the same refusal the eager loader makes) and
        ``IndexUnavailable`` when sqlite itself fails.
        """
        try:
            self._refresh()
        except sqlite3.Error as exc:
            raise IndexUnavailable(str(exc)) from exc

    def _refresh(self) -> None:
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            meta = self._meta()
            size = self._store_size()
            rebuild = (meta.get("index_version") != str(INDEX_VERSION)
                       or "hwm" not in meta
                       or int(meta["hwm"]) > size
                       or not self._head_matches(meta))
            if rebuild:
                self._conn.execute("DELETE FROM cells")
                generation = int(meta.get("generation", 0))
                self._ingest_locked(0, size)
                self._set_meta(index_version=INDEX_VERSION,
                               generation=generation)
            elif int(meta["hwm"]) < size:
                self._ingest_locked(int(meta["hwm"]), size)
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def rebuild(self, *, bump_generation: bool = False) -> None:
        """Re-derive every row from the JSONL alone.

        Args:
            bump_generation: increment the compaction generation counter —
                passed by :func:`repro.sweeps.compact.compact_store` so
                watchers notice that offsets/rowids were reassigned.
        """
        try:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                generation = int(self._meta().get("generation", 0))
                if bump_generation:
                    generation += 1
                self._conn.execute("DELETE FROM cells")
                self._ingest_locked(0, self._store_size())
                self._set_meta(index_version=INDEX_VERSION,
                               generation=generation)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        except sqlite3.Error as exc:
            raise IndexUnavailable(str(exc)) from exc

    def _ingest_locked(self, start: int, size: int) -> None:
        """Ingest ``[start, size)`` of the JSONL (caller holds the txn).

        Only whole lines advance the high-water mark; an unterminated tail
        is ingested *if it parses as a valid record* (matching the eager
        loader, which also accepts a newline-less final record) and left
        below the mark otherwise, so a torn fragment is re-examined once
        its terminator lands.
        """
        hwm = start
        if size > start:
            known = {
                (row[0], row[1], row[2], row[3]): (row[4], row[5])
                for row in self._conn.execute(
                    "SELECT sweep_id, scenario, engine, config_label, "
                    "key, cell_index FROM cells")
            }
            rows: list[tuple] = []
            with open(self._store_path, "rb") as handle:
                handle.seek(start)
                offset = start
                for raw in handle:
                    length = len(raw)
                    terminated = raw.endswith(b"\n")
                    record = parse_line(
                        raw.decode("utf-8", errors="replace"))
                    if record is None:
                        if not terminated:
                            break  # torn tail: wait for its newline
                    else:
                        existing = known.get(record.cell)
                        if existing is None:
                            known[record.cell] = (record.key,
                                                  record.cell_index)
                            rows.append(_row_for(
                                record, offset,
                                length - 1 if terminated else length))
                        elif existing != (record.key, record.cell_index):
                            raise _conflict_error(self._store_path,
                                                  record.cell)
                    offset += length
                    hwm = offset
                    if len(rows) >= 2048:
                        self._conn.executemany(_INSERT, rows)
                        rows.clear()
            if rows:
                self._conn.executemany(_INSERT, rows)
        head_len, head_hash = self._head_fingerprint(hwm)
        self._set_meta(hwm=hwm, head_len=head_len, head_hash=head_hash)

    def note_append(self, record: SweepRecord, offset: int, length: int
                    ) -> None:
        """Index one record the caller just appended at ``offset``.

        The common case (single writer) inserts one row and advances the
        high-water mark in one transaction.  If other writers appended
        between the mark and ``offset`` (a shared store), the gap is
        ingested first so the mark never skips un-indexed bytes.
        """
        try:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                hwm = int(self._meta().get("hwm", 0))
                if offset > hwm:
                    # Another writer's records landed first; ingest them
                    # so everything below the new mark is indexed.
                    self._ingest_gap_locked(hwm, offset)
                existing = self._conn.execute(
                    "SELECT key, cell_index FROM cells WHERE sweep_id = ? "
                    "AND scenario = ? AND engine = ? AND config_label = ?",
                    record.cell).fetchone()
                if existing is None:
                    self._conn.execute(_INSERT, _row_for(record, offset,
                                                         length))
                elif tuple(existing) != (record.key, record.cell_index):
                    raise _conflict_error(self._store_path, record.cell)
                end = offset + length + 1  # the record plus its newline
                if end > hwm:
                    head_len, head_hash = self._head_fingerprint(end)
                    self._set_meta(hwm=end, head_len=head_len,
                                   head_hash=head_hash)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        except sqlite3.Error as exc:
            raise IndexUnavailable(str(exc)) from exc

    def _ingest_gap_locked(self, start: int, end: int) -> None:
        """Ingest whole lines of ``[start, end)`` written by other hands."""
        with open(self._store_path, "rb") as handle:
            handle.seek(start)
            offset = start
            rows: list[tuple] = []
            while offset < end:
                raw = handle.readline()
                if not raw:
                    break
                length = len(raw)
                record = parse_line(raw.decode("utf-8", errors="replace"))
                if record is not None:
                    existing = self._conn.execute(
                        "SELECT key, cell_index FROM cells "
                        "WHERE sweep_id = ? AND scenario = ? "
                        "AND engine = ? AND config_label = ?",
                        record.cell).fetchone()
                    if existing is None:
                        rows.append(_row_for(
                            record, offset,
                            length - 1 if raw.endswith(b"\n") else length))
                    elif tuple(existing) != (record.key, record.cell_index):
                        raise _conflict_error(self._store_path, record.cell)
                offset += length
            if rows:
                self._conn.executemany(_INSERT, rows)

    # ------------------------------------------------------------------
    # Queries (all zero-scan: the JSONL is never opened)
    # ------------------------------------------------------------------
    def count(self, sweep_id: str | None = None) -> int:
        if sweep_id is None:
            return self._conn.execute(
                "SELECT COUNT(*) FROM cells").fetchone()[0]
        return self._conn.execute(
            "SELECT COUNT(*) FROM cells WHERE sweep_id = ?",
            (sweep_id,)).fetchone()[0]

    def sweep_counts(self) -> dict[str, int]:
        """Recorded cells per sweep, in first-appearance order."""
        return dict(self._conn.execute(
            "SELECT sweep_id, COUNT(*) FROM cells GROUP BY sweep_id "
            "ORDER BY MIN(rowid)"))

    def cell_entries(self, sweep_id: str | None = None) -> list[CellEntry]:
        """Every indexed cell's identity, in arrival (rowid) order."""
        query = ("SELECT sweep_id, scenario, engine, config_label, key, "
                 "cell_index FROM cells")
        args: tuple = ()
        if sweep_id is not None:
            query += " WHERE sweep_id = ?"
            args = (sweep_id,)
        return [CellEntry(*row) for row in
                self._conn.execute(query + " ORDER BY rowid", args)]

    def locations(self) -> list[tuple[tuple[str, str, str, str], int, int]]:
        """``(cell, offset, length)`` per record, in arrival order."""
        return [((row[0], row[1], row[2], row[3]), row[4], row[5])
                for row in self._conn.execute(
                    "SELECT sweep_id, scenario, engine, config_label, "
                    "offset, length FROM cells ORDER BY rowid")]

    def entries_after(self, rowid: int
                      ) -> list[tuple[int, CellEntry]]:
        """Rows appended after ``rowid`` — the watch tailing primitive."""
        return [(row[0], CellEntry(*row[1:])) for row in self._conn.execute(
            "SELECT rowid, sweep_id, scenario, engine, config_label, key, "
            "cell_index FROM cells WHERE rowid > ? ORDER BY rowid",
            (rowid,))]

    def max_rowid(self) -> int:
        value = self._conn.execute(
            "SELECT MAX(rowid) FROM cells").fetchone()[0]
        return int(value or 0)

    def _require_single_sweep(self) -> str | None:
        """The store's only sweep id (``None`` when empty); raise on >1."""
        sweeps = [row[0] for row in self._conn.execute(
            "SELECT DISTINCT sweep_id FROM cells ORDER BY sweep_id")]
        if len(sweeps) > 1:
            raise ValueError(
                f"records span multiple sweeps ({', '.join(sweeps)}); "
                f"filter by sweep_id before keying or summarising them"
            )
        return sweeps[0] if sweeps else None

    def summarise(self, *, sweep_id: str | None = None,
                  title: str = "sweep summary") -> Table:
        """Per-(engine, config) summary served entirely from the index.

        Same columns as :func:`repro.sweeps.driver.summarise_store_file`,
        without opening the JSONL: counts and sums come from SQL
        aggregation over the denormalised scalar columns, the geomean
        from the precomputed ``log_gflops``.  Groups are ordered by their
        first cell's canonical index — the order a canonically merged
        store's summary has, whatever order results arrived in.
        """
        if sweep_id is None:
            # Resolving the (required-unique) sweep id turns the scan
            # into a covering-index prefix seek on cells_summary.
            sweep_id = self._require_single_sweep()
        query = ("SELECT engine, config_label, COUNT(*), SUM(log_gflops), "
                 "SUM(dram_bytes), SUM(runtime_seconds), "
                 "SUM(energy_joules) FROM cells")
        args: tuple = ()
        if sweep_id is not None:
            query += " WHERE sweep_id = ?"
            args = (sweep_id,)
        query += " GROUP BY engine, config_label ORDER BY MIN(cell_index)"
        table = Table(
            title=title,
            columns=["engine", "config", "cells", "geomean GFLOP/s",
                     "DRAM [B]", "runtime [s]", "energy [J]"],
        )
        for engine, label, cells, log_sum, dram, runtime, energy in (
                self._conn.execute(query, args)):
            table.add_row(engine, label, cells,
                          math.exp(log_sum / cells), int(dram), runtime,
                          energy)
        return table

    def traffic_totals(self, *, sweep_id: str | None = None
                       ) -> dict[str, int]:
        """Total DRAM bytes by category across the indexed cells."""
        query = "SELECT traffic FROM cells"
        args: tuple = ()
        if sweep_id is not None:
            query += " WHERE sweep_id = ?"
            args = (sweep_id,)
        totals: dict[str, int] = {}
        for (payload,) in self._conn.execute(query, args):
            for category, num_bytes in json.loads(payload).items():
                totals[category] = totals.get(category, 0) + int(num_bytes)
        return totals

    def query_cells(self, *, where: dict[str, str] | None = None,
                    sort: str = "gflops", descending: bool = True,
                    limit: int | None = None) -> list[dict]:
        """Filter / top-k over individual cells, index-served.

        Args:
            where: equality filters over :data:`WHERE_COLUMNS`.
            sort: metric column ordering the result
                (:data:`METRIC_COLUMNS`).
            descending: highest first (the "top-k" sense) by default.
            limit: keep only the first ``limit`` rows.

        Returns:
            One dict per cell with its coordinates and every metric
            column, ordered by the sort metric (ties broken by arrival
            order, so results are deterministic).
        """
        if sort not in METRIC_COLUMNS:
            raise ValueError(
                f"unknown sort metric {sort!r}; choose from "
                f"{', '.join(METRIC_COLUMNS)}")
        clauses: list[str] = []
        args: list[str] = []
        for column, value in (where or {}).items():
            if column not in WHERE_COLUMNS:
                raise ValueError(
                    f"unknown filter column {column!r}; choose from "
                    f"{', '.join(WHERE_COLUMNS)}")
            clauses.append(f"{column} = ?")
            args.append(value)
        query = ("SELECT sweep_id, cell_index, scenario, engine, "
                 "config_label, key, status, cycles, runtime_seconds, "
                 "gflops, dram_bytes, energy_joules, output_nnz, "
                 "multiplications, additions FROM cells")
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += f" ORDER BY {sort} {'DESC' if descending else 'ASC'}, rowid"
        if limit is not None:
            if limit < 0:
                raise ValueError(f"limit must be non-negative, got {limit}")
            query += f" LIMIT {int(limit)}"
        names = ("sweep_id", "cell_index", "scenario", "engine",
                 "config_label", "key", "status", "cycles",
                 "runtime_seconds", "gflops", "dram_bytes",
                 "energy_joules", "output_nnz", "multiplications",
                 "additions")
        return [dict(zip(names, row))
                for row in self._conn.execute(query, args)]

    def dump_rows(self) -> list[tuple]:
        """Every cell row (without rowid), ordered by arrival — the
        comparison surface the index/JSONL consistency properties use."""
        return list(self._conn.execute(
            "SELECT sweep_id, scenario, engine, config_label, cell_index, "
            "key, report_key, offset, length, status, cycles, "
            "runtime_seconds, gflops, log_gflops, dram_bytes, traffic, "
            "energy_joules, output_nnz, multiplications, additions "
            "FROM cells ORDER BY rowid"))


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------
def ensure_index(store_path: str | os.PathLike) -> SweepIndex:
    """Open a store's index, bringing it up to date (rebuild if needed).

    The cheap path — a store whose writer maintained the index — touches
    no JSONL bytes; a store without one pays a single scan, after which
    every later query on it is zero-scan.
    """
    index = SweepIndex(store_path)
    try:
        index.refresh()
    except BaseException:
        index.close()
        raise
    return index


def open_fresh_index(store_path: str | os.PathLike) -> SweepIndex | None:
    """Open a store's index only if it is already up to date.

    Returns ``None`` (never scans, never rebuilds) when there is no
    usable, current index — the caller decides whether building one is
    worth a scan.
    """
    if not os.path.exists(index_path(store_path)):
        return None
    try:
        index = SweepIndex(store_path)
    except IndexUnavailable:
        return None
    try:
        if index.is_fresh():
            return index
    except (OSError, sqlite3.Error):
        pass
    index.close()
    return None


def cells_table(rows: list[dict], *, title: str) -> Table:
    """Render :meth:`SweepIndex.query_cells` rows as a report table."""
    table = Table(
        title=title,
        columns=["cell", "index", "GFLOP/s", "cycles", "runtime [s]",
                 "DRAM [B]", "energy [J]", "nnz"],
    )
    for row in rows:
        table.add_row(
            cell_key(row["scenario"], row["engine"], row["config_label"]),
            row["cell_index"], row["gflops"], row["cycles"],
            row["runtime_seconds"], row["dram_bytes"],
            row["energy_joules"], row["output_nnz"],
        )
    return table


def iter_hydrated(store_path: str | os.PathLike, index: SweepIndex
                  ) -> Iterator[SweepRecord]:
    """Yield full records by seeking the index's (offset, length) pairs.

    Raises ``ValueError`` if a read-back record does not match its index
    row — the store changed underneath the index (it should be refreshed
    or rebuilt, and the JSONL trusted meanwhile).
    """
    locations = index.locations()
    with open(store_path, "rb") as handle:
        for cell, offset, length in locations:
            handle.seek(offset)
            record = parse_line(handle.read(length).decode("utf-8"))
            if record is None or record.cell != cell:
                raise ValueError(
                    f"store {store_path} changed underneath its index "
                    f"(cell {'|'.join(cell[1:])!r}); rebuild the index"
                )
            yield record
