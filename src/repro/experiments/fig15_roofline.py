"""Figure 15 — roofline analysis of SpArch and OuterSPACE.

The paper computes a theoretical operational intensity of 0.19 FLOP/byte for
the outer product on its dataset, a 32 GFLOP/s compute roof (16 multipliers
+ adders at 1 GHz) and hence a 23.9 GFLOP/s bandwidth roof at 128 GB/s.
SpArch achieves 10.4 GFLOP/s against OuterSPACE's 2.5 GFLOP/s — 2.3× and
9.6× below the roof respectively.
"""

from __future__ import annotations

from repro.analysis.roofline import (
    PAPER_OPERATIONAL_INTENSITY,
    compulsory_traffic_bytes_from_counts,
    roofline_analysis,
)
from repro.baselines.outerspace import OuterSpaceAccelerator
from repro.core.config import SpArchConfig
from repro.experiments.common import ExperimentResult, default_suite
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table

PAPER_METRICS = {
    "operational_intensity": PAPER_OPERATIONAL_INTENSITY,
    "roof_gflops": 23.9,
    "achieved_gflops[SpArch]": 10.4,
    "achieved_gflops[OuterSPACE]": 2.5,
}


def run(*, max_rows: int = 1000, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce the Figure 15 roofline numbers on the benchmark suite."""
    config = config or SpArchConfig()
    matrices = matrices or default_suite(max_rows=max_rows, names=names)
    runner = runner or default_runner()
    outerspace = OuterSpaceAccelerator()

    sparch_stats = runner.simulate_many(
        [(matrix, config) for matrix in matrices.values()])
    intensities: list[float] = []
    sparch_gflops: list[float] = []
    outerspace_gflops: list[float] = []
    for matrix, stats in zip(matrices.values(), sparch_stats):
        outer_result = outerspace.multiply(matrix, matrix)
        compulsory = compulsory_traffic_bytes_from_counts(
            matrix.nnz, matrix.nnz, stats.output_nnz,
            element_bytes=config.element_bytes)
        intensities.append(stats.flops / compulsory if compulsory else 0.0)
        sparch_gflops.append(max(stats.gflops, 1e-12))
        outerspace_gflops.append(max(outer_result.gflops, 1e-12))

    intensity = geometric_mean(intensities)
    sparch_point = _aggregate_point("SpArch", intensity,
                                    geometric_mean(sparch_gflops), config)
    outerspace_point = _aggregate_point("OuterSPACE", intensity,
                                        geometric_mean(outerspace_gflops), config)

    table = Table(
        title="Figure 15 — roofline model",
        columns=["design", "OI (FLOP/B)", "achieved GFLOP/s", "roof GFLOP/s",
                 "fraction of roof"],
    )
    for point in (sparch_point, outerspace_point):
        table.add_row(point.name, point.operational_intensity,
                      point.achieved_gflops, point.roof_gflops,
                      point.roof_fraction)

    metrics = {
        "operational_intensity": intensity,
        "roof_gflops": sparch_point.roof_gflops,
        "achieved_gflops[SpArch]": sparch_point.achieved_gflops,
        "achieved_gflops[OuterSPACE]": outerspace_point.achieved_gflops,
        "roof_gap[SpArch]": sparch_point.roof_gflops / sparch_point.achieved_gflops,
        "roof_gap[OuterSPACE]": (outerspace_point.roof_gflops
                                 / outerspace_point.achieved_gflops),
    }
    return ExperimentResult(
        experiment_id="fig15",
        title="Roofline model for SpArch and OuterSPACE (Figure 15)",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_METRICS),
    )


def _aggregate_point(name: str, intensity: float, gflops: float,
                     config: SpArchConfig):
    """Build a roofline point from aggregate numbers."""
    from repro.core.stats import SimulationStats

    stats = SimulationStats(clock_hz=config.clock_hz,
                            peak_bandwidth_bytes_per_cycle=config.hbm.bytes_per_cycle)
    stats.cycles = 1
    stats.runtime_seconds = 1.0
    stats.multiplications = int(gflops * 1e9)
    point = roofline_analysis(stats, name=name, config=config,
                              operational_intensity=intensity)
    return point


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
