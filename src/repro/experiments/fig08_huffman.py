"""Figure 8 — Huffman tree scheduler worked example.

The paper illustrates the scheduler on twelve partial matrices with weights
(15, 15, 13, 12, 9, 7, 3, 2, 2, 2, 2, 2):

* a 2-way *sequential* scheduler gives a total node weight of **365**;
* a 2-way *Huffman* scheduler reduces it to **354**;
* a 4-way Huffman scheduler reduces it to **228**.

The total node weight is proportional to the DRAM traffic of partially
merged results, so this experiment checks our scheduler reproduces the
paper's numbers exactly.
"""

from __future__ import annotations

from repro.core.huffman import huffman_schedule, sequential_schedule
from repro.experiments.common import ExperimentResult
from repro.utils.reporting import Table

#: The leaf weights of the Figure 8 example, in the paper's order.
FIGURE8_WEIGHTS = [15.0, 15.0, 13.0, 12.0, 9.0, 7.0, 3.0, 2.0, 2.0, 2.0, 2.0, 2.0]

#: Total node weights the paper reports for the three schedulers.
PAPER_TOTAL_WEIGHTS = {
    "2-way sequential": 365.0,
    "2-way huffman": 354.0,
    "4-way huffman": 228.0,
}


def run(weights: list[float] | None = None) -> ExperimentResult:
    """Reproduce the Figure 8 example (or run it on custom ``weights``)."""
    weights = list(weights) if weights is not None else list(FIGURE8_WEIGHTS)

    schedules = {
        "2-way sequential": sequential_schedule(weights, 2),
        "2-way huffman": huffman_schedule(weights, 2),
        "4-way huffman": huffman_schedule(weights, 4),
        "64-way huffman": huffman_schedule(weights, 64),
    }

    table = Table(
        title="Figure 8 — total node weight (∝ DRAM traffic of partial results)",
        columns=["scheduler", "rounds", "total weight", "internal weight",
                 "paper"],
    )
    metrics: dict[str, float] = {}
    paper_values: dict[str, float] = {}
    for name, plan in schedules.items():
        paper = PAPER_TOTAL_WEIGHTS.get(name)
        table.add_row(name, len(plan.rounds), plan.total_weight,
                      plan.internal_weight,
                      paper if paper is not None else "-")
        metrics[f"total_weight[{name}]"] = plan.total_weight
        if paper is not None:
            paper_values[f"total_weight[{name}]"] = paper

    return ExperimentResult(
        experiment_id="fig08",
        title="Huffman tree scheduler example (Figure 8)",
        table=table,
        metrics=metrics,
        paper_values=paper_values,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
