"""End-to-end workload comparison: every registered pipeline, every backend.

The paper motivates SpArch with applications that chain many SpGEMMs
(triangle counting, Markov clustering).  This harness goes beyond the
paper's single-kernel figures: it runs every workload registered in
:mod:`repro.workloads` on benchmark-suite proxies, once under the SpArch
simulator and once under each comparison baseline, and reports the
end-to-end cycles / DRAM bytes / energy of the whole pipeline — the
application-level counterpart of Figures 11 and 12.

Every SpGEMM stage routes through the
:class:`~repro.experiments.runner.ExperimentRunner` fingerprint cache, so
stages shared between workloads (the adjacency square of ``triangles`` and
``khop``, for example) simulate once, and re-running the sweep replays
from the memo.  All backends traverse identical intermediate matrices (the
pipeline's canonical functional path), which keeps the comparison
apples-to-apples.
"""

from __future__ import annotations

from repro.baselines import SpGEMMBaseline
from repro.core.config import SpArchConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.fig11_speedup import default_baselines
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.matrices.suite import load_benchmark
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table
from repro.workloads.pipeline import BaselineExecutor, SpArchExecutor
from repro.workloads.registry import get_workload, list_workloads, run_workload

#: Suite matrices the comparison runs on by default — a small, structurally
#: diverse subset so the multi-SpGEMM pipelines stay tractable for a pure
#: Python simulator (override with ``names=``).
DEFAULT_NAMES = ["wiki-Vote", "ca-CondMat", "p2p-Gnutella31"]

#: Per-workload parameters applied in sweeps, capping iterative pipelines
#: at a scale where a full workload × backend × matrix sweep stays fast.
SWEEP_PARAMS: dict[str, dict] = {
    "mcl": {"max_iterations": 4},
    "khop": {"k": 3},
}


def run(*, max_rows: int = 400, names: list[str] | None = None,
        workload_ids: list[str] | None = None,
        baselines: list[SpGEMMBaseline] | None = None,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Run every registered workload under SpArch and the baselines.

    Args:
        max_rows: proxy dimension cap for the suite matrices.
        names: benchmark subset (structurally diverse trio by default).
        workload_ids: workload subset (every registered workload by default).
        baselines: comparison systems (the paper's five by default).
        config: SpArch configuration (Table I by default).
        runner: experiment runner providing memoised/batched simulation.
    """
    names = names if names is not None else list(DEFAULT_NAMES)
    workload_ids = (workload_ids if workload_ids is not None
                    else list_workloads())
    baselines = baselines if baselines is not None else default_baselines()
    runner = runner or default_runner()
    matrices = {name: load_benchmark(name, max_rows=max_rows)
                for name in names}

    executors = [SpArchExecutor(runner=runner, config=config)]
    executors += [BaselineExecutor(baseline, runner=runner)
                  for baseline in baselines]
    sparch_name = executors[0].backend_name

    table = Table(
        title="Workloads — end-to-end pipeline cost, SpArch vs baselines "
              f"(sum over {', '.join(names)})",
        columns=["workload", "backend", "SpGEMMs", "cycles", "runtime [s]",
                 "DRAM [B]", "energy [J]", "speedup", "energy saving"],
    )
    metrics: dict[str, float] = {}

    for workload_id in workload_ids:
        get_workload(workload_id)  # fail fast with the helpful unknown-id error
        params = SWEEP_PARAMS.get(workload_id, {})
        per_backend: dict[str, dict[str, list[float]]] = {}
        for executor in executors:
            runs = [run_workload(workload_id, matrix, executor=executor,
                                 **params)
                    for matrix in matrices.values()]
            per_backend[executor.backend_name] = {
                "spgemms": [float(len(r.spgemm_stages)) for r in runs],
                "cycles": [float(r.total_cycles) for r in runs],
                "runtime": [r.total_runtime_seconds for r in runs],
                "dram": [float(r.total_dram_bytes) for r in runs],
                "energy": [r.total_energy_joules for r in runs],
            }

        sparch = per_backend[sparch_name]
        for backend_name, totals in per_backend.items():
            is_sparch = backend_name == sparch_name
            speedup = geometric_mean([
                other / max(ours, 1e-15)
                for other, ours in zip(totals["runtime"], sparch["runtime"])
            ])
            saving = geometric_mean([
                other / max(ours, 1e-18)
                for other, ours in zip(totals["energy"], sparch["energy"])
            ])
            table.add_row(
                workload_id,
                backend_name,
                int(sum(totals["spgemms"])),
                int(sum(totals["cycles"])) if is_sparch else "-",
                sum(totals["runtime"]),
                int(sum(totals["dram"])),
                sum(totals["energy"]),
                speedup,
                saving,
            )
            if is_sparch:
                metrics[f"sparch_cycles[{workload_id}]"] = sum(totals["cycles"])
                metrics[f"sparch_dram_bytes[{workload_id}]"] = sum(totals["dram"])
                metrics[f"sparch_energy_joules[{workload_id}]"] = (
                    sum(totals["energy"]))
            else:
                metrics[f"speedup[{workload_id}][{backend_name}]"] = speedup
                metrics[f"energy_saving[{workload_id}][{backend_name}]"] = saving

    return ExperimentResult(
        experiment_id="workloads",
        title="End-to-end workload pipelines: SpArch vs baselines",
        table=table,
        metrics=metrics,
        notes=[
            f"benchmark proxies capped at {max_rows} rows; workloads: "
            f"{', '.join(workload_ids)}; speedup/energy saving are geometric "
            "means of per-matrix end-to-end ratios vs SpArch",
            "baseline platforms model runtime, not cycles ('-' entries); "
            "host stages (mask/inflate/prune/normalise) are charged zero "
            "accelerator cost on every backend",
        ],
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
