"""End-to-end workload comparison: every registered pipeline, every backend.

The paper motivates SpArch with applications that chain many SpGEMMs
(triangle counting, Markov clustering).  This harness goes beyond the
paper's single-kernel figures: it runs every workload registered in
:mod:`repro.workloads` on benchmark-suite proxies, once under the SpArch
simulator and once under each comparison baseline, and reports the
end-to-end cycles / DRAM bytes / energy of the whole pipeline — the
application-level counterpart of Figures 11 and 12.

Backends are dispatched through the engine registry
(:mod:`repro.engines`): one :class:`~repro.workloads.pipeline.EngineExecutor`
per engine, no per-backend branches.  Each pipeline run reduces to one
aggregate :class:`~repro.metrics.report.CostReport`, which is the only
thing the comparison consumes — so the sweep parallelises cleanly:

* **serial** (default): every SpGEMM stage routes through the
  :class:`~repro.experiments.runner.ExperimentRunner` fingerprint cache, so
  stages shared between workloads (the adjacency square of ``triangles``
  and ``khop``, for example) simulate once, and re-running the sweep
  replays from the memo;
* **fan-out** (``--jobs N`` / a runner with ``jobs > 1``): whole
  ``(workload, backend, matrix)`` pipeline runs are shipped to worker
  processes, each with its own in-memory memo.  Workers return aggregate
  cost reports, so the fan-out produces *identical* tables to the serial
  path (``tests/workloads/test_experiment_fanout.py`` proves it); the
  trade is cross-workload cache sharing for wall-clock parallelism.

All backends traverse identical intermediate matrices (the pipeline's
canonical functional path), which keeps the comparison apples-to-apples.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.baselines import SpGEMMBaseline
from repro.core.config import SpArchConfig
from repro.engines.adapters import BaselineEngineAdapter
from repro.engines.base import Engine
from repro.engines.sparch import SpArchEngine
from repro.experiments.common import ExperimentResult
from repro.experiments.fig11_speedup import default_baselines
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.matrices.suite import load_benchmark
from repro.metrics.report import CostReport
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table
from repro.workloads.pipeline import EngineExecutor
from repro.workloads.registry import get_workload, list_workloads, run_workload

#: Suite matrices the comparison runs on by default — a small, structurally
#: diverse subset so the multi-SpGEMM pipelines stay tractable for a pure
#: Python simulator (override with ``names=``).
DEFAULT_NAMES = ["wiki-Vote", "ca-CondMat", "p2p-Gnutella31"]

#: Per-workload parameters applied in sweeps, capping iterative pipelines
#: at a scale where a full workload × backend × matrix sweep stays fast.
SWEEP_PARAMS: dict[str, dict] = {
    "mcl": {"max_iterations": 4},
    "khop": {"k": 3},
    "pagerank": {"max_iterations": 8},
    "amg_vcycle": {"max_levels": 3},
    "gnn_sample": {"layers": 2},
    "serve_mix": {"batch": 4},
}


def _run_one(workload_id: str, params: dict, matrix: CSRMatrix,
             engine: Engine, runner: ExperimentRunner) -> CostReport:
    """Run one (workload, backend, matrix) pipeline; aggregate its cost."""
    executor = EngineExecutor(engine, runner=runner)
    result = run_workload(workload_id, matrix, executor=executor, **params)
    return result.aggregate_report()


def _workload_task(task: tuple[str, dict, CSRMatrix, Engine, str | None,
                               str | None]) -> dict:
    """Worker entry point: one pipeline run, aggregate report dict out.

    Each worker gets a fresh runner honouring the parent's forced backend
    and disk cache directory — so repeated stages *within* the pipeline
    memoise exactly as on the serial path, and stage reports still land in
    (and replay from) the shared on-disk memo.  Concurrent writers are
    safe: cache entries are written atomically (tmp + rename).
    """
    workload_id, params, matrix, engine, forced_backend, cache_dir = task
    local_runner = ExperimentRunner(engine=forced_backend,
                                    cache_dir=cache_dir)
    return _run_one(workload_id, params, matrix, engine,
                    local_runner).to_dict()


def _sweep_reports(workload_ids: list[str], matrices: dict[str, CSRMatrix],
                   engines: list[Engine], runner: ExperimentRunner
                   ) -> dict[tuple[str, str], list[CostReport]]:
    """Aggregate reports of every (workload, backend) pair, per matrix.

    Serial when the runner has one job (shared fingerprint cache across
    workloads and backends); process fan-out over whole pipeline runs when
    ``runner.jobs > 1``.
    """
    grid = [(workload_id, SWEEP_PARAMS.get(workload_id, {}), name, engine)
            for workload_id in workload_ids
            for engine in engines
            for name in matrices]
    if runner.jobs > 1 and len(grid) > 1:
        cache_dir = str(runner.cache_dir) if runner.cache_dir else None
        tasks = [(workload_id, params, matrices[name], engine, runner.engine,
                  cache_dir)
                 for workload_id, params, name, engine in grid]
        with ProcessPoolExecutor(max_workers=runner.jobs) as pool:
            payloads = list(pool.map(_workload_task, tasks))
        reports = [CostReport.from_dict(payload) for payload in payloads]
    else:
        reports = [_run_one(workload_id, params, matrices[name], engine,
                            runner)
                   for workload_id, params, name, engine in grid]
    per_pair: dict[tuple[str, str], list[CostReport]] = {}
    for (workload_id, _, _, engine), report in zip(grid, reports):
        per_pair.setdefault((workload_id, engine.display_name),
                            []).append(report)
    return per_pair


def run(*, max_rows: int = 400, names: list[str] | None = None,
        workload_ids: list[str] | None = None,
        baselines: list[SpGEMMBaseline] | None = None,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Run every registered workload under SpArch and the baselines.

    Args:
        max_rows: proxy dimension cap for the suite matrices.
        names: benchmark subset (structurally diverse trio by default).
        workload_ids: workload subset (every registered workload by default).
        baselines: comparison systems (the paper's five by default).
        config: SpArch configuration (Table I by default).
        runner: experiment runner providing memoised/batched execution;
            ``runner.jobs > 1`` fans whole pipeline runs out over worker
            processes.
    """
    names = names if names is not None else list(DEFAULT_NAMES)
    workload_ids = (workload_ids if workload_ids is not None
                    else list_workloads())
    baselines = baselines if baselines is not None else default_baselines()
    runner = runner or default_runner()
    for workload_id in workload_ids:
        get_workload(workload_id)  # fail fast with the helpful unknown-id error
    matrices = {name: load_benchmark(name, max_rows=max_rows)
                for name in names}

    engines: list[Engine] = [SpArchEngine(config or SpArchConfig())]
    engines += [BaselineEngineAdapter(baseline) for baseline in baselines]
    sparch_name = engines[0].display_name

    table = Table(
        title="Workloads — end-to-end pipeline cost, SpArch vs baselines "
              f"(sum over {', '.join(names)})",
        columns=["workload", "backend", "SpGEMMs", "cycles", "runtime [s]",
                 "DRAM [B]", "energy [J]", "speedup", "energy saving"],
    )
    metrics: dict[str, float] = {}
    experiment_reports: dict[str, CostReport] = {}

    per_pair = _sweep_reports(workload_ids, matrices, engines, runner)
    for workload_id in workload_ids:
        per_backend = {engine.display_name:
                       per_pair[(workload_id, engine.display_name)]
                       for engine in engines}
        sparch = per_backend[sparch_name]
        for backend_name, reports in per_backend.items():
            is_sparch = backend_name == sparch_name
            speedup = geometric_mean([
                other.runtime_seconds / max(ours.runtime_seconds, 1e-15)
                for other, ours in zip(reports, sparch)
            ])
            saving = geometric_mean([
                other.energy_joules / max(ours.energy_joules, 1e-18)
                for other, ours in zip(reports, sparch)
            ])
            total = CostReport.aggregate(reports, engine=backend_name)
            experiment_reports[f"{workload_id}[{backend_name}]"] = total
            spgemms = sum(report.extras.get("spgemm_stages", 0.0)
                          for report in reports)
            table.add_row(
                workload_id,
                backend_name,
                int(spgemms),
                total.cycles if is_sparch else "-",
                total.runtime_seconds,
                total.dram_bytes,
                total.energy_joules,
                speedup,
                saving,
            )
            if is_sparch:
                metrics[f"sparch_cycles[{workload_id}]"] = float(total.cycles)
                metrics[f"sparch_dram_bytes[{workload_id}]"] = (
                    float(total.dram_bytes))
                metrics[f"sparch_energy_joules[{workload_id}]"] = (
                    total.energy_joules)
            else:
                metrics[f"speedup[{workload_id}][{backend_name}]"] = speedup
                metrics[f"energy_saving[{workload_id}][{backend_name}]"] = saving

    return ExperimentResult(
        experiment_id="workloads",
        title="End-to-end workload pipelines: SpArch vs baselines",
        table=table,
        metrics=metrics,
        notes=[
            f"benchmark proxies capped at {max_rows} rows; workloads: "
            f"{', '.join(workload_ids)}; speedup/energy saving are geometric "
            "means of per-matrix end-to-end ratios vs SpArch",
            "baseline platforms model runtime, not cycles ('-' entries); "
            "host stages (mask/inflate/prune/normalise) are charged zero "
            "accelerator cost on every backend",
        ],
        reports=experiment_reports,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
