"""Shared plumbing for the experiment harnesses.

Besides workload loading and the :class:`ExperimentResult` container, this
module exposes :func:`simulate` and :func:`simulate_workload` — thin wrappers
over :class:`repro.experiments.runner.ExperimentRunner` that every harness
routes its SpArch simulations through.  That shared funnel is what lets one
``python -m repro.experiments all`` sweep reuse each (matrix, config)
simulation across figures instead of recomputing it per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.metrics.report import SCHEMA_VERSION, CostReport
from repro.matrices.suite import (
    DEFAULT_MAX_ROWS,
    benchmark_names,
    get_benchmark_spec,
    load_benchmark,
    load_suite,
)
from repro.utils.reporting import Table

#: Floors applied when scaling the on-chip buffers down with the proxies, so
#: degenerate configurations (a one-line buffer) never appear.
MIN_PREFETCH_LINES = 32
MIN_LOOKAHEAD_ELEMENTS = 256


@dataclass
class ExperimentResult:
    """Outcome of one experiment harness.

    Attributes:
        experiment_id: registry key ("fig11", "table2", ...).
        title: human-readable title, matching the paper artefact.
        table: the rendered rows/series the paper reports.
        metrics: flat ``{name: value}`` dict of headline numbers, used by the
            tests and by EXPERIMENTS.md.
        paper_values: the corresponding numbers reported in the paper, for
            side-by-side comparison.
        notes: free-form remarks (scaling caveats, substitutions).
        reports: named canonical cost reports behind the table — one per
            measured point (or aggregate), keyed however the harness labels
            them.  Serialised verbatim into the ``--json`` payload, so any
            experiment's raw cost model is machine-readable in one schema.
    """

    experiment_id: str
    title: str
    table: Table
    metrics: dict[str, float] = field(default_factory=dict)
    paper_values: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    reports: dict[str, CostReport] = field(default_factory=dict)

    def to_payload(self) -> dict:
        """JSON-serialisable payload of the whole result (one schema for
        every registered experiment — this is what ``--json`` writes)."""
        payload = {
            "schema_version": SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "metrics": self.metrics,
            "paper_values": self.paper_values,
            "notes": self.notes,
            "table": {"title": self.table.title,
                      "columns": self.table.columns,
                      "rows": self.table.rows},
        }
        if self.reports:
            payload["reports"] = {name: report.to_dict()
                                  for name, report in self.reports.items()}
        return payload

    def render(self) -> str:
        """Render the experiment output as plain text."""
        lines = [self.table.render()]
        if self.metrics:
            lines.append("")
            lines.append("Headline metrics (measured vs paper):")
            for key, value in self.metrics.items():
                paper = self.paper_values.get(key)
                if paper is None:
                    lines.append(f"  {key}: {value:.4g}")
                else:
                    lines.append(f"  {key}: {value:.4g}  (paper: {paper:.4g})")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def simulate(matrix: CSRMatrix, config: SpArchConfig | None = None, *,
             runner: ExperimentRunner | None = None) -> SimulationStats:
    """Simulate ``matrix · matrix`` through the (given or default) runner."""
    return (runner or default_runner()).simulate(matrix, config)


def gather_comparison_reports(workload: dict[str, tuple[CSRMatrix, SpArchConfig | None]],
                              baselines: list, *,
                              runner: ExperimentRunner | None = None
                              ) -> tuple[dict[str, CostReport],
                                         dict[tuple[str, str], CostReport]]:
    """Cost reports of one SpArch-vs-baselines comparison sweep.

    The shared shape of Figures 11 and 12 (and any future per-matrix
    comparison): every workload point once on SpArch, once per baseline,
    all through the runner's memo.

    Args:
        workload: ``{name: (matrix, config)}`` points (``config=None``
            means Table I).
        baselines: the comparison :class:`SpGEMMBaseline` systems.
        runner: experiment runner providing memoised/batched execution.

    Returns:
        ``(sparch_reports, baseline_reports)`` keyed ``{name: report}`` and
        ``{(name, baseline_index): report}`` respectively — baselines are
        keyed by position, not display name, so two parameterisations of
        the same system stay distinct.
    """
    from repro.engines.adapters import BaselineEngineAdapter
    from repro.engines.sparch import SpArchEngine

    runner = runner or default_runner()
    names = list(workload)
    sparch_reports = dict(zip(names, runner.run_engine_many(
        [(SpArchEngine(config or SpArchConfig()), matrix)
         for matrix, config in workload.values()])))
    per_point = runner.run_engine_many(
        [(BaselineEngineAdapter(baseline), matrix)
         for matrix, _ in workload.values()
         for baseline in baselines])
    baseline_reports = dict(zip(
        [(name, index) for name in names
         for index in range(len(baselines))],
        per_point))
    return sparch_reports, baseline_reports


def simulate_workload(workload: dict[str, tuple[CSRMatrix, SpArchConfig | None]],
                      *, runner: ExperimentRunner | None = None
                      ) -> dict[str, SimulationStats]:
    """Simulate a named workload, memoised and (optionally) fanned out."""
    return (runner or default_runner()).simulate_workload(workload)


def default_suite(*, max_rows: int = DEFAULT_MAX_ROWS,
                  names: list[str] | None = None) -> dict[str, CSRMatrix]:
    """Load the (scaled) 20-matrix benchmark suite used by most experiments.

    Args:
        max_rows: proxy dimension cap (see
            :func:`repro.matrices.suite.proxy_dimensions`).
        names: subset of benchmark names; defaults to all 20.
    """
    return load_suite(max_rows=max_rows, names=names)


def small_suite(*, max_rows: int = 600, count: int = 5) -> dict[str, CSRMatrix]:
    """A few-matrix subset for quick runs (tests, pytest-benchmark)."""
    names = benchmark_names()[:count]
    return load_suite(max_rows=max_rows, names=names)


def _scaled_capacity(base: int, scale: float, floor: int) -> int:
    """One buffer capacity scaled down, floored, and clamped to its base.

    The clamp to ``base`` fixes a latent bug of the unclamped version: with
    a base capacity *below* the floor (ablation configurations use 8-line
    buffers), the floor used to silently *enlarge* the buffer.  The final
    ``max(1, ...)`` guarantees a structurally valid (≥ 1 entry) capacity
    for any base, so a scaled configuration can never fail
    :class:`~repro.core.config.SpArchConfig` validation with a
    zero-capacity buffer.
    """
    return max(1, min(base, max(floor, int(round(base * scale)))))


def scale_buffer_capacities(config: SpArchConfig, scale: float) -> SpArchConfig:
    """Scale a configuration's prefetch/look-ahead capacities by ``scale``.

    Args:
        config: configuration to scale.
        scale: proxy shrink factor; must satisfy ``0 < scale <= 1``.  A
            factor above 1 would *grow* the buffers past Table I — always a
            caller bug (paper-scale runs must use the unscaled
            configuration instead), so it raises rather than clamping
            silently.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(
            f"buffer scale factor must be in (0, 1], got {scale!r}; "
            "paper-scale runs use the unscaled configuration"
        )
    lines = _scaled_capacity(config.prefetch_buffer_lines, scale,
                             MIN_PREFETCH_LINES)
    lookahead = _scaled_capacity(config.lookahead_fifo_elements, scale,
                                 MIN_LOOKAHEAD_ELEMENTS)
    return config.replace(prefetch_buffer_lines=lines,
                          lookahead_fifo_elements=lookahead)


def scaled_config(name: str, *, max_rows: int = DEFAULT_MAX_ROWS,
                  base_config: SpArchConfig | None = None) -> SpArchConfig:
    """Scale the on-chip buffers down with the benchmark proxy.

    The paper's Table I buffers (1024-line prefetch buffer, 8192-element
    look-ahead FIFO) are sized against matrices with 10⁵–10⁶ rows.  A proxy
    capped at a few thousand rows fits entirely in those buffers, which
    would overstate the prefetcher's hit rate (the paper measures 62 %).
    Scaling the buffer capacities by the same factor as the matrix keeps
    the capacity-to-working-set ratio — the quantity the replacement policy
    actually sees — at the paper's operating point.  At or beyond the
    benchmark's original dimension no scaling applies (``scale == 1``) —
    that is the paper-scale regime, see :func:`paper_scale_config`.
    DESIGN.md §2 and EXPERIMENTS.md document this.

    Args:
        name: benchmark name (used to look up the original dimension).
        max_rows: proxy dimension cap used when generating the matrix.
        base_config: configuration to scale (Table I by default).
    """
    base_config = base_config or SpArchConfig()
    spec = get_benchmark_spec(name)
    scale = min(1.0, max_rows / spec.num_rows)
    return scale_buffer_capacities(base_config, scale)


def paper_scale_config(base_config: SpArchConfig | None = None) -> SpArchConfig:
    """The configuration paper-scale (10⁵+-row) scenarios run under.

    Unscaled Table I buffers — at this dimension the capacity-to-working-set
    ratio *is* the paper's operating point, so no proxy compensation applies
    — on the streaming backend, whose working set is bounded per merge
    round rather than per matrix.
    """
    base_config = base_config or SpArchConfig()
    return base_config.replace(engine="streaming")


def load_scaled_suite(*, max_rows: int = DEFAULT_MAX_ROWS,
                      names: list[str] | None = None,
                      base_config: SpArchConfig | None = None
                      ) -> dict[str, tuple[CSRMatrix, SpArchConfig]]:
    """Load benchmark proxies together with their proxy-scaled configurations.

    Returns:
        ``{name: (matrix, config)}`` where ``config`` is
        :func:`scaled_config` of that benchmark.
    """
    selected = names if names is not None else benchmark_names()
    return {
        name: (load_benchmark(name, max_rows=max_rows),
               scaled_config(name, max_rows=max_rows, base_config=base_config))
        for name in selected
    }


#: Default paper-scale dimension cap (10⁵ rows) and the suite benchmarks
#: cheap enough to run at it routinely: the smallest-nnz big-suite members
#: (patents_main averages ~2.3 nnz/row, so the 10⁵-row proxy stays around
#: half a million partial products; m133-b3 is the denser mid rung).
PAPER_SCALE_MAX_ROWS = 100_000
PAPER_SCALE_NAMES = ("patents_main", "m133-b3")


def load_paper_scale_suite(*, max_rows: int = PAPER_SCALE_MAX_ROWS,
                           names: list[str] | None = None,
                           base_config: SpArchConfig | None = None
                           ) -> dict[str, tuple[CSRMatrix, SpArchConfig]]:
    """Load paper-scale proxies with the *unscaled* Table I configuration.

    The counterpart of :func:`load_scaled_suite` for the 10⁵+-row regime:
    every matrix is paired with :func:`paper_scale_config` (unscaled
    buffers, streaming backend).

    Returns:
        ``{name: (matrix, config)}``.
    """
    config = paper_scale_config(base_config)
    selected = list(names) if names is not None else list(PAPER_SCALE_NAMES)
    return {name: (load_benchmark(name, max_rows=max_rows), config)
            for name in selected}
