"""Table II — area, power and bandwidth utilisation versus OuterSPACE.

The paper reports SpArch at 28.49 mm² / 9.26 W in 40 nm with 68.6 % HBM
bandwidth utilisation, against OuterSPACE's 87 mm² / 12.39 W / 48.3 % in
32 nm.  This harness evaluates the area and energy models for the Table I
configuration and measures the simulated bandwidth utilisation over the
benchmark suite.
"""

from __future__ import annotations

from repro.analysis.area import (
    AreaModel,
    OUTERSPACE_TOTAL_AREA_MM2,
    SPARCH_TOTAL_AREA_MM2,
)
from repro.analysis.energy import EnergyModel
from repro.baselines.outerspace import (
    OUTERSPACE_BANDWIDTH_UTILIZATION,
    OUTERSPACE_POWER_W,
)
from repro.core.config import SpArchConfig
from repro.experiments.common import (
    ExperimentResult,
    load_scaled_suite,
    simulate_workload,
)
from repro.experiments.runner import ExperimentRunner
from repro.formats.csr import CSRMatrix
from repro.utils.reporting import Table

PAPER_METRICS = {
    "area_mm2[SpArch]": SPARCH_TOTAL_AREA_MM2,
    "area_mm2[OuterSPACE]": OUTERSPACE_TOTAL_AREA_MM2,
    "power_w[SpArch]": 9.26,
    "power_w[OuterSPACE]": OUTERSPACE_POWER_W,
    "bandwidth_utilization[SpArch]": 0.686,
    "bandwidth_utilization[OuterSPACE]": OUTERSPACE_BANDWIDTH_UTILIZATION,
}


def run(*, max_rows: int = 800, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce the Table II comparison."""
    config = config or SpArchConfig()
    if matrices is not None:
        workload = {name: (matrix, config) for name, matrix in matrices.items()}
    else:
        workload = load_scaled_suite(max_rows=max_rows, names=names,
                                     base_config=config)

    area_model = AreaModel()
    energy_model = EnergyModel()

    total_energy = 0.0
    total_runtime = 0.0
    utilizations: list[float] = []
    sparch_stats = simulate_workload(workload, runner=runner)
    for name, (matrix, matrix_config) in workload.items():
        stats = sparch_stats[name]
        total_energy += energy_model.total_energy(stats, matrix_config)
        total_runtime += stats.runtime_seconds
        utilizations.append(stats.bandwidth_utilization)

    sparch_area = area_model.total_area(config)
    sparch_power = total_energy / total_runtime if total_runtime > 0 else 0.0
    sparch_utilization = sum(utilizations) / len(utilizations)

    table = Table(
        title="Table II — comparison with OuterSPACE",
        columns=["metric", "SpArch (measured)", "SpArch (paper)",
                 "OuterSPACE (paper)"],
    )
    table.add_row("Area (mm²)", sparch_area, SPARCH_TOTAL_AREA_MM2,
                  OUTERSPACE_TOTAL_AREA_MM2)
    table.add_row("Power (W)", sparch_power, 9.26, OUTERSPACE_POWER_W)
    table.add_row("Bandwidth utilisation", sparch_utilization, 0.686,
                  OUTERSPACE_BANDWIDTH_UTILIZATION)

    metrics = {
        "area_mm2[SpArch]": sparch_area,
        "area_mm2[OuterSPACE]": OUTERSPACE_TOTAL_AREA_MM2,
        "power_w[SpArch]": sparch_power,
        "power_w[OuterSPACE]": OUTERSPACE_POWER_W,
        "bandwidth_utilization[SpArch]": sparch_utilization,
        "bandwidth_utilization[OuterSPACE]": OUTERSPACE_BANDWIDTH_UTILIZATION,
    }
    return ExperimentResult(
        experiment_id="table2",
        title="Area / power / bandwidth utilisation vs OuterSPACE (Table II)",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_METRICS),
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
