"""Experiment harnesses: one runnable module per paper table/figure.

Every module exposes a ``run(...)`` function returning an
:class:`repro.experiments.common.ExperimentResult` (a rendered table plus a
flat dict of headline metrics) and can be executed directly::

    python -m repro.experiments fig11      # speedup over the five baselines
    python -m repro.experiments --list     # list every registered experiment
    python -m repro.experiments all        # run the full evaluation

The mapping from paper artefact to module lives in
:mod:`repro.experiments.registry` and in the per-experiment index of
DESIGN.md.
"""

from repro.experiments.common import ExperimentResult, default_suite
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "ExperimentResult",
    "default_suite",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
]
