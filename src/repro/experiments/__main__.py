"""Command-line runner: ``python -m repro.experiments <id> [...]``.

The batched :class:`~repro.experiments.runner.ExperimentRunner` sits behind
every experiment: simulation points shared between figures (the scaled suite
under the Table I configuration, for example) are simulated once per sweep
and, with ``--cache-dir``, once *ever* — reruns replay from the on-disk
memo.  ``--jobs N`` fans distinct points out over N worker processes;
``--engine scalar`` forces the scalar reference backend end to end — for
the SpArch simulator *and* for every baseline comparison point, which are
then memoised under engine-specific cache keys.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path

from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.runner import ExperimentRunner, set_default_runner
from repro.utils.reporting import cost_table


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the SpArch paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to run (e.g. fig11 table2), or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list the registered experiments and exit")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="override the benchmark proxy dimension cap")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation fan-out")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="memoise simulation results on disk under DIR "
                             "(e.g. .repro-cache); default: in-memory only")
    parser.add_argument("--engine",
                        choices=("scalar", "vectorized", "streaming"),
                        default=None,
                        help="force a simulation backend for every run "
                             "(SpArch and baselines alike)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the results (tables and metrics) of "
                             "every experiment run as JSON to PATH")
    parser.add_argument("--reports", action="store_true",
                        help="also print each experiment's per-point cost "
                             "reports (one unified table for any engine)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        for experiment_id in list_experiments():
            entry = get_experiment(experiment_id)
            print(f"{experiment_id:>8}  {entry.title}")
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = list_experiments()

    runner = ExperimentRunner(cache_dir=args.cache_dir, jobs=args.jobs,
                              engine=args.engine)
    # Harnesses called without an explicit runner fall back to the default;
    # installing ours makes the whole sweep share one memo pool.
    set_default_runner(runner)

    payloads: dict[str, dict] = {}
    for experiment_id in requested:
        entry = get_experiment(experiment_id)
        kwargs = {}
        parameters = inspect.signature(entry.run).parameters
        if args.max_rows is not None and "max_rows" in parameters:
            kwargs["max_rows"] = args.max_rows
        if "runner" in parameters:
            kwargs["runner"] = runner
        print(f"== {entry.title} ==")
        result = entry.run(**kwargs)
        print(result.render())
        if args.reports and result.reports:
            print()
            print(cost_table(f"{entry.title} — cost reports",
                             result.reports).render())
        print()
        # One schema for every registered experiment: the unified payload
        # (table + metrics + any attached CostReports) renders the same way
        # whether the harness measures figures, tables or workloads.
        payloads[experiment_id] = result.to_payload()
    if args.json is not None:
        Path(args.json).write_text(json.dumps(payloads, indent=2,
                                              sort_keys=True) + "\n")
    hits, misses = runner.cache_hits, runner.cache_misses
    if hits or misses:
        print(f"[runner] {misses} simulation points computed, "
              f"{hits} reused from cache")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
