"""Command-line runner: ``python -m repro.experiments <id> [...]``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import get_experiment, list_experiments


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the SpArch paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to run (e.g. fig11 table2), or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list the registered experiments and exit")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="override the benchmark proxy dimension cap")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        for experiment_id in list_experiments():
            entry = get_experiment(experiment_id)
            print(f"{experiment_id:>8}  {entry.title}")
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = list_experiments()

    for experiment_id in requested:
        entry = get_experiment(experiment_id)
        kwargs = {}
        if args.max_rows is not None and experiment_id not in ("fig08", "fig14"):
            kwargs["max_rows"] = args.max_rows
        print(f"== {entry.title} ==")
        result = entry.run(**kwargs)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
