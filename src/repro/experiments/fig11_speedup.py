"""Figure 11 — speedup of SpArch over the five baselines, per matrix.

The paper reports, for each of the 20 benchmark matrices, the speedup of
SpArch over OuterSPACE, Intel MKL, cuSPARSE, CUSP and ARM Armadillo, with
geometric means of 4×, 19×, 18×, 17× and 1285× respectively.

This harness runs every matrix (as a synthetic proxy — see DESIGN.md §3)
through the SpArch simulator and through each baseline's functional
implementation + platform model, and prints the same per-matrix rows and
geomean that the paper's Figure 11 plots.
"""

from __future__ import annotations

from repro.baselines import (
    ArmadilloSpGEMM,
    ESCSpGEMM,
    GustavsonSpGEMM,
    HashSpGEMM,
    OuterSpaceAccelerator,
    SpGEMMBaseline,
)
from repro.core.config import SpArchConfig
from repro.experiments.common import (
    ExperimentResult,
    gather_comparison_reports,
    load_scaled_suite,
)
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table

#: Geometric-mean speedups reported by the paper (Figure 11).
PAPER_GEOMEAN_SPEEDUP = {
    "OuterSPACE": 4.15,
    "MKL": 18.67,
    "cuSPARSE": 17.56,
    "CUSP": 16.55,
    "Armadillo": 1284.83,
}


def default_baselines() -> list[SpGEMMBaseline]:
    """The five comparison systems of Figure 11, in paper order."""
    return [OuterSpaceAccelerator(), GustavsonSpGEMM(), HashSpGEMM(),
            ESCSpGEMM(), ArmadilloSpGEMM()]


def run(*, max_rows: int = 1000, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        config: SpArchConfig | None = None,
        baselines: list[SpGEMMBaseline] | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce Figure 11 on the (scaled) benchmark suite.

    Args:
        max_rows: proxy dimension cap for the suite matrices.
        names: subset of benchmark names (default: all 20).
        matrices: explicit matrices to use instead of the generated suite.
        config: SpArch configuration (Table I by default).
        baselines: comparison systems (the paper's five by default).
        runner: experiment runner providing memoised/batched simulation.
    """
    if matrices is not None:
        workload = {name: (matrix, config) for name, matrix in matrices.items()}
    else:
        workload = load_scaled_suite(max_rows=max_rows, names=names,
                                     base_config=config)
    baselines = baselines if baselines is not None else default_baselines()
    runner = runner or default_runner()

    columns = ["matrix"] + [f"over {b.name}" for b in baselines]
    table = Table(title="Figure 11 — speedup of SpArch over baselines", columns=columns)

    # Every point — SpArch and baselines alike — goes through the engine
    # registry and comes back as a canonical CostReport; the speedup is one
    # runtime ratio regardless of which system produced each side.
    sparch_reports, baseline_reports = gather_comparison_reports(
        workload, baselines, runner=runner)
    reports = {f"SpArch[{name}]": report
               for name, report in sparch_reports.items()}
    speedups: dict[str, list[float]] = {b.name: [] for b in baselines}
    for name in workload:
        sparch_runtime = sparch_reports[name].runtime_seconds
        row: list[object] = [name]
        for index, baseline in enumerate(baselines):
            report = baseline_reports[(name, index)]
            reports[f"{baseline.name}[{name}]"] = report
            speedup = report.runtime_seconds / max(sparch_runtime, 1e-15)
            speedups[baseline.name].append(speedup)
            row.append(speedup)
        table.add_row(*row)

    geomeans = {name: geometric_mean(values) for name, values in speedups.items()}
    table.add_row("Geo Mean", *[geomeans[b.name] for b in baselines])

    metrics = {f"geomean_speedup[{name}]": value for name, value in geomeans.items()}
    paper_values = {f"geomean_speedup[{name}]": value
                    for name, value in PAPER_GEOMEAN_SPEEDUP.items()
                    if f"geomean_speedup[{name}]" in metrics}
    return ExperimentResult(
        experiment_id="fig11",
        title="Speedup over OuterSPACE, MKL, cuSPARSE, CUSP, Armadillo (Figure 11)",
        table=table,
        metrics=metrics,
        paper_values=paper_values,
        notes=[f"benchmark proxies capped at {max_rows} rows with "
               "proxy-scaled on-chip buffers (DESIGN.md §3, EXPERIMENTS.md)"],
        reports=reports,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
