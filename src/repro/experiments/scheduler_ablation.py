"""Ablation: Huffman tree scheduler versus the sequential scheduler.

Figure 8 demonstrates the scheduler on a 12-leaf example; this harness
quantifies it on the benchmark suite.  For every matrix it builds both
schedules over the actual condensed-column weights and compares

* the scheduled total node weight (the Figure 8 metric, ∝ DRAM traffic of
  partially merged results), and
* the simulated partial-matrix DRAM traffic and throughput of the full
  accelerator under each scheduler,

for a merge tree deliberately smaller than the condensed-column count (so
that scheduling actually matters — with the full 64-way tree most proxies
merge in one round and both schedulers coincide).
"""

from __future__ import annotations

import numpy as np

from repro.core.condensing import partial_matrix_sizes
from repro.core.config import SpArchConfig
from repro.core.huffman import huffman_schedule, sequential_schedule
from repro.experiments.common import ExperimentResult, load_scaled_suite, simulate
from repro.experiments.runner import ExperimentRunner
from repro.formats.condensed import CondensedMatrix
from repro.formats.csr import CSRMatrix
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table

PAPER_METRICS = {
    # Figure 2 credits the Huffman scheduler with 1.8x less DRAM access of
    # partially merged results (1.5x speedup) at the paper's scale.
    "geomean_partial_traffic_reduction": 1.8,
}


def run(*, max_rows: int = 2000, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        merge_tree_layers: int = 3,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Compare Huffman and sequential scheduling on the benchmark suite.

    Args:
        max_rows: proxy dimension cap.
        names: benchmark subset (default: all 20).
        matrices: explicit matrices instead of the generated suite.
        merge_tree_layers: merge tree depth used for the comparison; the
            default 3 (8-way) keeps the scheduling problem non-trivial on
            the scaled proxies.
        config: base configuration.
    """
    base_config = (config or SpArchConfig()).replace(
        merge_tree_layers=merge_tree_layers)
    if matrices is not None:
        workload = {name: (matrix, base_config) for name, matrix in matrices.items()}
    else:
        workload = load_scaled_suite(max_rows=max_rows, names=names,
                                     base_config=base_config)
        workload = {name: (matrix, cfg.replace(merge_tree_layers=merge_tree_layers))
                    for name, (matrix, cfg) in workload.items()}

    table = Table(
        title=f"Huffman vs sequential scheduling ({2 ** merge_tree_layers}-way merger)",
        columns=["matrix", "leaves", "huffman weight", "sequential weight",
                 "weight ratio", "partial-traffic reduction", "speedup"],
    )
    weight_ratios, traffic_reductions, speedups = [], [], []
    for name, (matrix, matrix_config) in workload.items():
        condensed = CondensedMatrix(matrix)
        weights = [float(w) for w in partial_matrix_sizes(condensed, matrix)]
        ways = matrix_config.merge_ways
        huffman_plan = huffman_schedule(weights, ways)
        sequential_plan = sequential_schedule(weights, ways)
        weight_ratio = (sequential_plan.total_weight
                        / max(huffman_plan.total_weight, 1e-9))

        huffman_stats = simulate(matrix, matrix_config, runner=runner)
        sequential_stats = simulate(
            matrix, matrix_config.with_features(huffman_scheduler=False),
            runner=runner)
        traffic_reduction = (
            max(1, sequential_stats.traffic.partial_matrix_bytes)
            / max(1, huffman_stats.traffic.partial_matrix_bytes))
        speedup = sequential_stats.cycles / max(1, huffman_stats.cycles)

        weight_ratios.append(max(weight_ratio, 1e-9))
        traffic_reductions.append(max(traffic_reduction, 1e-9))
        speedups.append(max(speedup, 1e-9))
        table.add_row(name, len(weights), huffman_plan.total_weight,
                      sequential_plan.total_weight, weight_ratio,
                      traffic_reduction, speedup)

    metrics = {
        "geomean_weight_ratio": geometric_mean(weight_ratios),
        "geomean_partial_traffic_reduction": geometric_mean(traffic_reductions),
        "geomean_speedup": geometric_mean(speedups),
        "fraction_matrices_huffman_no_worse": float(np.mean(
            [ratio >= 0.999 for ratio in traffic_reductions])),
    }
    table.add_row("Geo Mean", "-", "-", "-", metrics["geomean_weight_ratio"],
                  metrics["geomean_partial_traffic_reduction"],
                  metrics["geomean_speedup"])
    return ExperimentResult(
        experiment_id="scheduler",
        title="Huffman tree scheduler ablation (§II-C)",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_METRICS),
        notes=[f"evaluated with a {2 ** merge_tree_layers}-way merge tree so "
               "that the scaled proxies need multiple merge rounds"],
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
