"""Figure 2 / Figure 16 — dissecting the performance gain.

Starting from the OuterSPACE baseline, the paper adds its four techniques
one at a time: pipelining multiply and merge alone is a 5.7× *slowdown*
(the ~140,000 un-condensed partial matrices thrash DRAM), matrix condensing
is an 8.8× speedup on top, the Huffman scheduler 1.5×, and the row
prefetcher 1.8×, for ≈ 4.2× over OuterSPACE overall.

The first two factors are strongly scale-dependent: they are driven by the
ratio of the partial-matrix count to the 64-way merge tree.  Synthetic
proxies capped at a few thousand rows cannot produce 140,000 partial
matrices, so this harness reports both

* the *measured* walk on the scaled proxies, and
* the *paper-scale analytical projection* from the §III-C traffic model
  (:mod:`repro.analysis.dram_traffic`) evaluated at the paper's average
  N = 140,000 columns and 100 condensed columns,

so the crossover shape can be checked at both scales.
"""

from __future__ import annotations

from repro.analysis.breakdown import cumulative_breakdown
from repro.analysis.dram_traffic import (
    condensed_traffic_elements,
    outerspace_traffic_elements,
    uncondensed_traffic_elements,
)
from repro.core.config import SpArchConfig
from repro.experiments.common import ExperimentResult, default_suite
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.utils.reporting import Table

#: Step-over-step factors reported in Figure 2 / Figure 16.
PAPER_METRICS = {
    "speedup_vs_prev[Pipelined Multiply and Merge]": 1 / 5.7,
    "speedup_vs_prev[+ Matrix Condensing]": 8.8,
    "speedup_vs_prev[+ Huffman Tree Scheduler]": 1.5,
    "speedup_vs_prev[+ Row Prefetcher]": 1.8,
    "overall_speedup_vs_outerspace": 4.2,
}

#: Average matrix statistics the paper's §III-C analysis assumes.
PAPER_AVG_COLUMNS = 140_000
PAPER_AVG_CONDENSED_COLUMNS = 100


def run(*, max_rows: int = 4000, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce the Figure 16 breakdown (measured + paper-scale projection)."""
    config = config or SpArchConfig()
    if matrices is None:
        if names is None:
            # A representative subset keeps the un-condensed configurations
            # tractable; the full suite is available by passing names.
            names = ["wiki-Vote", "facebook", "poisson3Da", "ca-CondMat",
                     "email-Enron", "p2p-Gnutella31"]
        matrices = default_suite(max_rows=max_rows, names=names)

    runner = runner or default_runner()
    steps = cumulative_breakdown(matrices, base_config=config,
                                 simulate=runner.simulate)

    table = Table(
        title="Figure 16 — performance breakdown (measured on scaled proxies)",
        columns=["configuration", "GFLOP/s", "DRAM bytes",
                 "speedup vs prev", "speedup vs OuterSPACE"],
    )
    metrics: dict[str, float] = {}
    for step in steps:
        table.add_row(step.name, step.gflops, step.dram_bytes,
                      step.speedup_vs_previous, step.speedup_vs_outerspace)
        if step.name != "OuterSPACE baseline":
            metrics[f"speedup_vs_prev[{step.name}]"] = step.speedup_vs_previous
    metrics["overall_speedup_vs_outerspace"] = steps[-1].speedup_vs_outerspace

    # Paper-scale analytical projection of the first two steps (the ones the
    # scaled proxies cannot reach): DRAM element counts in units of M.
    multiplications = 1.0
    ways = config.merge_ways
    outerspace_traffic = outerspace_traffic_elements(multiplications)
    uncondensed = uncondensed_traffic_elements(multiplications, PAPER_AVG_COLUMNS,
                                               ways)
    condensed = condensed_traffic_elements(multiplications,
                                           PAPER_AVG_CONDENSED_COLUMNS, ways)
    projection = Table(
        title="§III-C analytical projection at paper scale (traffic in units of M)",
        columns=["configuration", "traffic / M", "vs OuterSPACE"],
    )
    projection.add_row("OuterSPACE", outerspace_traffic, 1.0)
    projection.add_row("Pipelined only (N=140k)", uncondensed,
                       outerspace_traffic / uncondensed)
    projection.add_row("+ Matrix condensing (N=100)", condensed,
                       outerspace_traffic / condensed)
    metrics["projected_slowdown[pipelined_only]"] = uncondensed / outerspace_traffic
    metrics["projected_speedup[condensing]"] = uncondensed / condensed

    result = ExperimentResult(
        experiment_id="fig16",
        title="Dissecting the performance gain (Figure 2 / Figure 16)",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_METRICS),
        notes=[
            f"proxies capped at {max_rows} rows; the pipelined-only slowdown "
            "only fully materialises at the paper's ~140k-column scale — see "
            "the analytical projection below",
            projection.render(),
        ],
    )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
