"""Batched experiment runner: shared simulation points, memoised and fanned out.

Every figure/table harness ultimately calls ``SpArch(config).multiply(m, m)``
on some set of matrices, and the sets overlap heavily — fig11, fig12, table2
and fig15 all square the same benchmark proxies under the same scaled
configurations.  The seed re-simulated each point once per experiment.

:class:`ExperimentRunner` deduplicates that work:

* **Memoisation** — each ``(matrix, config)`` pair is fingerprinted (SHA-256
  over the CSR arrays and the configuration fields) and its
  :class:`~repro.core.stats.SimulationStats` cached, in memory always and on
  disk when a cache directory is configured (``--cache-dir`` on the CLI or
  ``REPRO_CACHE_DIR`` in the environment).  Disk entries are JSON files named
  ``<fingerprint>.json`` under ``<cache_dir>/sim/``.  The ``engine`` field is
  *excluded* from the fingerprint: the differential harness
  (``tests/integration/test_engine_equivalence.py``) guarantees both engines
  produce identical statistics, so results are shared across engines —
  except when an engine is explicitly forced (see below), in which case
  entries are keyed per backend so the forced run really simulates.
* **Fan-out** — :meth:`simulate_many` runs distinct uncached points through
  ``concurrent.futures`` worker processes (``--jobs`` / ``REPRO_JOBS``),
  falling back to in-process execution for a single job.
* **Engine override** — a runner built with ``engine="scalar"`` (CLI
  ``--engine``) re-runs every simulation on the scalar reference engine,
  which is how the batched suite can be cross-checked end to end.  Forced
  runs use engine-specific cache keys, so a warm shared cache cannot
  satisfy the cross-check without actually simulating.
* **Baseline points** — :meth:`run_baseline` / :meth:`run_baseline_many`
  give the six comparison simulators the same treatment: each
  ``(baseline, matrix)`` point is fingerprinted (baseline class, platform
  constants and model parameters plus the operand hashes) and its
  :class:`~repro.baselines.base.BaselineSummary` memoised under
  ``<cache_dir>/baseline/``.  As with SpArch points, the baseline
  ``engine`` backend is excluded from the key — the differential harness
  (``tests/baselines/test_backend_equivalence.py``) proves both backends
  produce identical counters — except when the runner forces an engine,
  which both re-keys the entries *and* re-runs every baseline on that
  backend.

Experiment harnesses accept a ``runner`` keyword and route every SpArch
simulation through :meth:`simulate` / :meth:`simulate_workload` and every
baseline comparison point through :meth:`run_baseline_many`, so one
``python -m repro.experiments all`` sweep simulates each shared point once.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.baselines.base import BaselineSummary, SpGEMMBaseline
from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.formats.csr import CSRMatrix

#: Environment variables honoured by :func:`default_runner`.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
JOBS_ENV = "REPRO_JOBS"


def matrix_fingerprint(matrix: CSRMatrix) -> str:
    """Content hash of a CSR matrix (shape + structure + values)."""
    digest = hashlib.sha256()
    digest.update(repr(matrix.shape).encode())
    digest.update(matrix.indptr.tobytes())
    digest.update(matrix.indices.tobytes())
    digest.update(matrix.data.tobytes())
    return digest.hexdigest()


def config_fingerprint(config: SpArchConfig, *,
                       include_engine: bool = False) -> str:
    """Content hash of a configuration.

    By default the ``engine`` backend is excluded: both engines are proven
    to produce identical results and statistics, so cached simulation points
    are shared between them.  ``include_engine=True`` keys the entry to the
    backend — used when an engine is *forced*, so a cross-check run really
    simulates instead of replaying the other backend's cache.
    """
    payload = dataclasses.asdict(config)
    if not include_engine:
        payload.pop("engine", None)
    digest = hashlib.sha256()
    digest.update(json.dumps(payload, sort_keys=True, default=str).encode())
    return digest.hexdigest()


def simulation_key(matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                   config: SpArchConfig, *,
                   include_engine: bool = False) -> str:
    """Cache key of one ``A · B`` simulation under ``config``."""
    digest = hashlib.sha256()
    digest.update(matrix_fingerprint(matrix_a).encode())
    if matrix_b is not matrix_a:
        digest.update(matrix_fingerprint(matrix_b).encode())
    else:
        digest.update(b"self")
    digest.update(config_fingerprint(config,
                                     include_engine=include_engine).encode())
    return digest.hexdigest()


def baseline_fingerprint(baseline: SpGEMMBaseline, *,
                         include_engine: bool = False) -> str:
    """Content hash of a baseline's model identity.

    Uses :meth:`~repro.baselines.base.BaselineEngine.cache_fields` (class
    name, platform constants, algorithm parameters).  As with
    :func:`config_fingerprint`, the execution ``engine`` is excluded unless
    it is forced: both backends are proven to produce identical counters, so
    cached baseline points are shared between them.
    """
    payload = dict(baseline.cache_fields())
    if include_engine:
        payload["engine"] = baseline.engine
    digest = hashlib.sha256()
    digest.update(json.dumps(payload, sort_keys=True, default=str).encode())
    return digest.hexdigest()


def baseline_simulation_key(baseline: SpGEMMBaseline, matrix_a: CSRMatrix,
                            matrix_b: CSRMatrix, *,
                            include_engine: bool = False) -> str:
    """Cache key of one baseline ``A · B`` run."""
    digest = hashlib.sha256()
    digest.update(matrix_fingerprint(matrix_a).encode())
    if matrix_b is not matrix_a:
        digest.update(matrix_fingerprint(matrix_b).encode())
    else:
        digest.update(b"self")
    digest.update(baseline_fingerprint(
        baseline, include_engine=include_engine).encode())
    return digest.hexdigest()


def _simulate_task(task: tuple[CSRMatrix, CSRMatrix | None, SpArchConfig]
                   ) -> dict:
    """Worker entry point: run one simulation, return serialised stats."""
    matrix_a, matrix_b, config = task
    right = matrix_a if matrix_b is None else matrix_b
    result = SpArch(config).multiply(matrix_a, right)
    return result.stats.to_dict()


def _baseline_task(task: tuple[SpGEMMBaseline, CSRMatrix, CSRMatrix | None]
                   ) -> dict:
    """Worker entry point: run one baseline point, return a summary dict."""
    baseline, matrix_a, matrix_b = task
    right = matrix_a if matrix_b is None else matrix_b
    result = baseline.multiply(matrix_a, right)
    return BaselineSummary.from_result(baseline, result).to_dict()


class ExperimentRunner:
    """Runs SpArch simulations with memoisation and optional fan-out.

    Args:
        cache_dir: directory for the on-disk result cache; ``None`` keeps
            the cache in memory only (one process lifetime).
        jobs: worker processes for :meth:`simulate_many`; ``1`` runs
            in-process.
        engine: when set, overrides ``config.engine`` for every simulation
            (``"scalar"`` or ``"vectorized"``).
    """

    def __init__(self, *, cache_dir: str | os.PathLike | None = None,
                 jobs: int = 1, engine: str | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if engine is not None and engine not in ("scalar", "vectorized"):
            raise ValueError(f"unknown engine {engine!r}")
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._jobs = jobs
        self._engine = engine
        self._memory_cache: dict[str, dict] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        if self._cache_dir is not None:
            (self._cache_dir / "sim").mkdir(parents=True, exist_ok=True)
            (self._cache_dir / "baseline").mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def cache_dir(self) -> Path | None:
        return self._cache_dir

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def engine(self) -> str | None:
        return self._engine

    def _effective_config(self, config: SpArchConfig | None) -> SpArchConfig:
        config = config or SpArchConfig()
        if self._engine is not None and config.engine != self._engine:
            config = config.replace(engine=self._engine)
        return config

    # ------------------------------------------------------------------
    def _cache_path(self, key: str, kind: str = "sim") -> Path | None:
        if self._cache_dir is None:
            return None
        return self._cache_dir / kind / f"{key}.json"

    def _cache_load(self, key: str, kind: str = "sim") -> dict | None:
        payload = self._memory_cache.get(key)
        if payload is not None:
            return payload
        path = self._cache_path(key, kind)
        if path is None or not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # corrupt/concurrent write; recompute
        self._memory_cache[key] = payload
        return payload

    def _cache_store(self, key: str, payload: dict, kind: str = "sim") -> None:
        self._memory_cache[key] = payload
        path = self._cache_path(key, kind)
        if path is None:
            return
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload))
            tmp.replace(path)  # atomic on POSIX: concurrent writers race safely
        except OSError:
            pass  # cache is best-effort

    # ------------------------------------------------------------------
    def simulate(self, matrix_a: CSRMatrix, config: SpArchConfig | None = None,
                 *, matrix_b: CSRMatrix | None = None) -> SimulationStats:
        """Simulate ``A · B`` (``B = A`` by default), memoised.

        Returns the simulation statistics only — the functional result
        matrix is not cached (no experiment consumes it; the differential
        and property tests exercise it directly through :class:`SpArch`).
        """
        config = self._effective_config(config)
        right = matrix_b if matrix_b is not None else matrix_a
        key = simulation_key(matrix_a, right, config,
                             include_engine=self._engine is not None)
        payload = self._cache_load(key)
        if payload is None:
            self.cache_misses += 1
            payload = _simulate_task((matrix_a, matrix_b, config))
            self._cache_store(key, payload)
        else:
            self.cache_hits += 1
        return SimulationStats.from_dict(payload)

    def simulate_many(self, tasks: list[tuple[CSRMatrix, SpArchConfig | None]]
                      ) -> list[SimulationStats]:
        """Simulate many ``A · A`` points, fanning uncached ones out.

        Args:
            tasks: ``(matrix, config)`` pairs; order is preserved in the
                returned list.
        """
        configs = [self._effective_config(config) for _, config in tasks]
        forced = self._engine is not None
        keys = [simulation_key(matrix, matrix, config, include_engine=forced)
                for (matrix, _), config in zip(tasks, configs)]

        missing: dict[str, tuple[CSRMatrix, None, SpArchConfig]] = {}
        for (matrix, _), config, key in zip(tasks, configs, keys):
            if self._cache_load(key) is None and key not in missing:
                missing[key] = (matrix, None, config)

        self.cache_hits += len(keys) - len(missing)
        self.cache_misses += len(missing)
        if missing:
            items = list(missing.items())
            if self._jobs > 1 and len(items) > 1:
                with ProcessPoolExecutor(max_workers=self._jobs) as pool:
                    payloads = list(pool.map(_simulate_task,
                                             [task for _, task in items]))
            else:
                payloads = [_simulate_task(task) for _, task in items]
            for (key, _), payload in zip(items, payloads):
                self._cache_store(key, payload)

        return [SimulationStats.from_dict(self._cache_load(key)) for key in keys]

    def simulate_workload(self, workload: dict[str, tuple[CSRMatrix, SpArchConfig | None]]
                          ) -> dict[str, SimulationStats]:
        """Simulate a named ``{name: (matrix, config)}`` workload."""
        names = list(workload)
        stats = self.simulate_many([workload[name] for name in names])
        return dict(zip(names, stats))

    # ------------------------------------------------------------------
    def _effective_baseline(self, baseline: SpGEMMBaseline) -> SpGEMMBaseline:
        """Apply the runner's forced engine to a baseline, when set."""
        if (self._engine is not None
                and getattr(baseline, "engine", None) != self._engine):
            return baseline.using_engine(self._engine)
        return baseline

    def run_baseline(self, baseline: SpGEMMBaseline, matrix_a: CSRMatrix, *,
                     matrix_b: CSRMatrix | None = None) -> BaselineSummary:
        """Run one baseline point (``B = A`` by default), memoised.

        Returns the serialisable :class:`BaselineSummary` only — like
        :meth:`simulate`, the functional result matrix is not cached (no
        experiment consumes it; the differential tests exercise it directly
        through ``baseline.multiply``).
        """
        baseline = self._effective_baseline(baseline)
        right = matrix_b if matrix_b is not None else matrix_a
        key = baseline_simulation_key(baseline, matrix_a, right,
                                      include_engine=self._engine is not None)
        payload = self._cache_load(key, "baseline")
        if payload is None:
            self.cache_misses += 1
            payload = _baseline_task((baseline, matrix_a, matrix_b))
            self._cache_store(key, payload, "baseline")
        else:
            self.cache_hits += 1
        return BaselineSummary.from_dict(payload)

    def run_baseline_many(self, tasks: list[tuple[SpGEMMBaseline, CSRMatrix]]
                          ) -> list[BaselineSummary]:
        """Run many baseline ``A · A`` points, fanning uncached ones out.

        Args:
            tasks: ``(baseline, matrix)`` pairs; order is preserved in the
                returned list.
        """
        baselines = [self._effective_baseline(baseline)
                     for baseline, _ in tasks]
        forced = self._engine is not None
        keys = [baseline_simulation_key(baseline, matrix, matrix,
                                        include_engine=forced)
                for baseline, (_, matrix) in zip(baselines, tasks)]

        missing: dict[str, tuple[SpGEMMBaseline, CSRMatrix, None]] = {}
        for baseline, (_, matrix), key in zip(baselines, tasks, keys):
            if (self._cache_load(key, "baseline") is None
                    and key not in missing):
                missing[key] = (baseline, matrix, None)

        self.cache_hits += len(keys) - len(missing)
        self.cache_misses += len(missing)
        if missing:
            items = list(missing.items())
            if self._jobs > 1 and len(items) > 1:
                with ProcessPoolExecutor(max_workers=self._jobs) as pool:
                    payloads = list(pool.map(_baseline_task,
                                             [task for _, task in items]))
            else:
                payloads = [_baseline_task(task) for _, task in items]
            for (key, _), payload in zip(items, payloads):
                self._cache_store(key, payload, "baseline")

        return [BaselineSummary.from_dict(self._cache_load(key, "baseline"))
                for key in keys]


_default_runner: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """Process-wide runner used when a harness is called without one.

    Honours ``REPRO_CACHE_DIR`` (disk cache location; unset keeps the cache
    in memory) and ``REPRO_JOBS`` (fan-out width, default 1).
    """
    global _default_runner
    if _default_runner is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
        jobs = int(os.environ.get(JOBS_ENV, "1") or "1")
        _default_runner = ExperimentRunner(cache_dir=cache_dir, jobs=jobs)
    return _default_runner


def set_default_runner(runner: ExperimentRunner | None) -> None:
    """Install (or with ``None``, reset) the process-wide default runner."""
    global _default_runner
    _default_runner = runner
