"""Batched experiment runner: engine points memoised as cost reports.

Every figure/table harness ultimately runs some set of ``(engine, matrix)``
points — SpArch simulations under scaled configurations, baseline platform
models over the same matrices — and the sets overlap heavily across
experiments.  :class:`ExperimentRunner` deduplicates that work behind one
canonical schema:

* **One memo schema** — every point, SpArch and baseline alike, is cached
  as a serialised :class:`~repro.metrics.report.CostReport`.  The cache key
  folds in :data:`repro.metrics.SCHEMA_VERSION`, so entries written under
  an older report layout are never deserialised into the new shape — their
  keys simply stop matching and the points recompute.
* **One dispatch** — :meth:`run_engine` / :meth:`run_engine_many` accept an
  :class:`~repro.engines.base.Engine` instance *or a registry name* and
  return cost reports.  The legacy entry points (:meth:`simulate`,
  :meth:`run_baseline`, ...) are thin views that rebuild the native
  :class:`~repro.core.stats.SimulationStats` /
  :class:`~repro.baselines.base.BaselineSummary` from the report's lossless
  ``detail`` payload, so nothing downstream changed numerically.
* **Memoisation** — each point is fingerprinted (SHA-256 over the CSR
  arrays and the engine's model identity) and cached in memory always and
  on disk when a cache directory is configured (``--cache-dir`` on the CLI
  or ``REPRO_CACHE_DIR`` in the environment): JSON files under
  ``<cache_dir>/sim/`` for simulation points and ``<cache_dir>/baseline/``
  for baseline points.
* **Backend sharing** — the execution backend (scalar/vectorized) is
  *excluded* from the fingerprint: the differential harnesses
  (``tests/integration/test_engine_equivalence.py``,
  ``tests/baselines/test_backend_equivalence.py``) prove both backends
  produce identical counters, so results are shared across them — except
  when a backend is explicitly forced (``--engine`` / ``engine=``), in
  which case entries are keyed per backend so the cross-check really
  simulates.
* **Fan-out** — :meth:`run_engine_many` (and everything built on it) runs
  distinct uncached points through ``concurrent.futures`` worker processes
  (``--jobs`` / ``REPRO_JOBS``), falling back to in-process execution for a
  single job.

Experiment harnesses accept a ``runner`` keyword and route every point
through this class, so one ``python -m repro.experiments all`` sweep
simulates each shared point once.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path

from repro.baselines.base import BaselineSummary, SpGEMMBaseline
from repro.core.config import BACKEND_FIELDS, SpArchConfig
from repro.core.stats import SimulationStats
from repro.engines.adapters import BaselineEngineAdapter
from repro.engines.base import Engine
from repro.engines.registry import resolve_engine
from repro.engines.sparch import SpArchEngine
from repro.formats.csr import CSRMatrix
from repro.metrics.report import SCHEMA_VERSION, CostReport
from repro.serve.store import ReportStore

#: Environment variables honoured by :func:`default_runner`.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
JOBS_ENV = "REPRO_JOBS"


def matrix_fingerprint(matrix: CSRMatrix) -> str:
    """Content hash of a CSR matrix (shape + structure + values)."""
    digest = hashlib.sha256()
    digest.update(repr(matrix.shape).encode())
    digest.update(matrix.indptr.tobytes())
    digest.update(matrix.indices.tobytes())
    digest.update(matrix.data.tobytes())
    return digest.hexdigest()


def _identity_fingerprint(payload: dict) -> str:
    """Hash a JSON-serialisable identity payload, schema version included.

    Folding :data:`~repro.metrics.SCHEMA_VERSION` into every fingerprint is
    what invalidates pre-refactor cache entries cleanly: a schema bump
    rotates every key, so an old payload is never loaded, let alone
    deserialised into the new :class:`CostReport` shape.
    """
    payload = dict(payload)
    payload["schema"] = SCHEMA_VERSION
    digest = hashlib.sha256()
    digest.update(json.dumps(payload, sort_keys=True, default=str).encode())
    return digest.hexdigest()


def config_fingerprint(config: SpArchConfig, *,
                       include_engine: bool = False) -> str:
    """Content hash of a SpArch configuration.

    By default the ``engine`` backend is excluded: the backends are proven
    to produce identical results and statistics, so cached simulation points
    are shared between them.  ``include_engine=True`` keys the entry to the
    backend — used when a backend is *forced*, so a cross-check run really
    simulates instead of replaying the other backend's cache.  The streaming
    chunk sizes are *always* excluded: they are simulation-host tuning knobs
    with no effect on any simulated quantity (pinned by a property test),
    so varying them must never fragment the memo.
    """
    payload = dataclasses.asdict(config)
    for field in BACKEND_FIELDS:
        payload.pop(field, None)
    if include_engine:
        payload["engine"] = config.engine
    return _identity_fingerprint(payload)


def simulation_key(matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                   config: SpArchConfig, *,
                   include_engine: bool = False) -> str:
    """Cache key of one SpArch ``A · B`` simulation under ``config``."""
    return engine_point_key(SpArchEngine(config), matrix_a, matrix_b,
                            include_backend=include_engine)


def baseline_fingerprint(baseline: SpGEMMBaseline, *,
                         include_engine: bool = False) -> str:
    """Content hash of a baseline's model identity.

    Uses :meth:`~repro.baselines.base.BaselineEngine.cache_fields` (class
    name, platform constants, algorithm parameters).  As with
    :func:`config_fingerprint`, the execution backend is excluded unless it
    is forced.
    """
    payload = dict(baseline.cache_fields())
    if include_engine:
        payload["engine"] = baseline.engine
    return _identity_fingerprint(payload)


def baseline_simulation_key(baseline: SpGEMMBaseline, matrix_a: CSRMatrix,
                            matrix_b: CSRMatrix, *,
                            include_engine: bool = False) -> str:
    """Cache key of one baseline ``A · B`` run."""
    return engine_point_key(BaselineEngineAdapter(baseline),
                            matrix_a, matrix_b,
                            include_backend=include_engine)


def engine_point_key(engine: Engine, matrix_a: CSRMatrix | None,
                     matrix_b: CSRMatrix | None, *,
                     include_backend: bool = False,
                     fingerprint_a: str | None = None,
                     fingerprint_b: str | None = None) -> str:
    """Cache key of one ``A · B`` point under any :class:`Engine`.

    The model identity comes from the engine's own
    :meth:`~repro.engines.base.Engine.cache_fields` (which excludes the
    execution backend by contract); ``include_backend=True`` adds the
    backend for forced cross-check runs.

    Self-products are keyed by *fingerprint equality*, not object identity:
    ``matrix_b=None``, ``matrix_b is matrix_a`` and an equal-content copy
    of ``matrix_a`` all describe the same ``A · A`` computation, so they
    must share one cache entry.  (An earlier revision hashed identity-based
    self-products as a ``b"self"`` sentinel, which gave an equal-content
    copy a different key and silently fragmented the memo.)

    ``fingerprint_a`` / ``fingerprint_b`` accept precomputed
    :func:`matrix_fingerprint` values so grid callers (the sweeps driver
    keys every config cell of a scenario against one operand) hash each
    matrix once instead of once per cell.  With ``fingerprint_a`` given,
    ``matrix_a`` may be ``None`` — a key can be computed for an operand
    that is no longer materialised.
    """
    identity = dict(engine.cache_fields())
    if include_backend:
        identity["backend"] = engine.backend
    digest = hashlib.sha256()
    if fingerprint_a is None:
        if matrix_a is None:
            raise ValueError("matrix_a may be None only with fingerprint_a")
        fingerprint_a = matrix_fingerprint(matrix_a)
    if fingerprint_b is None:
        # An explicit fingerprint_b always wins — without it, a missing
        # (or identical) matrix_b means the self-product ``A · A``.
        if matrix_b is None or matrix_b is matrix_a:
            fingerprint_b = fingerprint_a
        else:
            fingerprint_b = matrix_fingerprint(matrix_b)
    digest.update(fingerprint_a.encode())
    digest.update(fingerprint_b.encode())
    digest.update(_identity_fingerprint(identity).encode())
    return digest.hexdigest()


def _engine_task(task: tuple[Engine, CSRMatrix, CSRMatrix | None]) -> dict:
    """Worker entry point: run one engine point, return a report dict."""
    engine, matrix_a, matrix_b = task
    return engine.run(matrix_a, matrix_b).report.to_dict()


def _engine_task_to_pipe(task, connection) -> None:
    """Timeout-mode worker entry point: report outcome through a pipe."""
    try:
        connection.send(("ok", _engine_task(task)))
    except BaseException as exc:  # noqa: BLE001 — relayed, not swallowed
        try:
            connection.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        connection.close()


def run_tasks_with_timeout(items: list[tuple[str, tuple]], *,
                           timeout: float, jobs: int = 1
                           ) -> dict[str, dict | str | None]:
    """Run engine tasks in killable processes under a wall-clock budget.

    Unlike the :class:`ProcessPoolExecutor` fan-out (whose workers cannot be
    interrupted mid-task without poisoning the pool), each task here runs in
    a dedicated process that is ``SIGKILL``-ed the moment its deadline
    passes — a hung engine costs its own timeout, never the whole batch.

    Args:
        items: ``(key, (engine, matrix_a, matrix_b))`` pairs; keys must be
            unique.
        timeout: per-task wall-clock budget in seconds.
        jobs: concurrently running task processes.

    Returns:
        ``{key: payload}`` where the payload is the report dict on success,
        an error-message string when the engine raised, and ``None`` when
        the task was killed at its deadline (or its process died).
    """
    if timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    context = multiprocessing.get_context()
    pending = deque(items)
    active: dict[object, tuple[str, object, float]] = {}  # conn -> state
    results: dict[str, dict | str | None] = {}
    try:
        while pending or active:
            while pending and len(active) < max(1, jobs):
                key, task = pending.popleft()
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(target=_engine_task_to_pipe,
                                          args=(task, sender), daemon=True)
                process.start()
                sender.close()
                active[receiver] = (key, process,
                                    time.monotonic() + timeout)
            now = time.monotonic()
            next_deadline = min(deadline for _, _, deadline
                                in active.values())
            ready = _connection_wait(list(active),
                                     timeout=max(0.0, next_deadline - now))
            finished = []
            for receiver in ready:
                key, process, _ = active[receiver]
                try:
                    status, payload = receiver.recv()
                except (EOFError, OSError):
                    status, payload = "died", None
                results[key] = payload if status == "ok" else (
                    payload if status == "error" else None)
                finished.append(receiver)
                process.join()
            now = time.monotonic()
            for receiver, (key, process, deadline) in list(active.items()):
                if receiver in finished:
                    continue
                if now >= deadline:
                    process.kill()
                    process.join()
                    results[key] = None
                    finished.append(receiver)
            for receiver in finished:
                receiver.close()
                del active[receiver]
    finally:
        for key, process, _ in active.values():
            process.kill()
            process.join()
    return results


class ExperimentRunner:
    """Runs engine points with memoisation and optional process fan-out.

    Args:
        cache_dir: directory for the on-disk result cache; ``None`` keeps
            the cache in memory only (one process lifetime).
        jobs: worker processes for :meth:`run_engine_many`; ``1`` runs
            in-process.
        engine: when set, forces the execution *backend* (``"scalar"``,
            ``"vectorized"`` or ``"streaming"``) for every point — the
            SpArch core and every baseline alike — with backend-specific
            cache keys.
    """

    def __init__(self, *, cache_dir: str | os.PathLike | None = None,
                 jobs: int = 1, engine: str | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if engine is not None and engine not in ("scalar", "vectorized",
                                                 "streaming"):
            raise ValueError(f"unknown engine {engine!r}")
        self._jobs = jobs
        self._engine = engine
        # The memo itself is the shared, concurrent-safe ReportStore — the
        # serving layer reads beside this runner's writers, and threaded
        # callers (each service request runs on its own thread) coalesce
        # duplicate in-flight points into one execution.
        self._store = ReportStore(cache_dir=cache_dir)

    # ------------------------------------------------------------------
    @property
    def cache_dir(self) -> Path | None:
        return self._store.cache_dir

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def engine(self) -> str | None:
        return self._engine

    @property
    def store(self) -> ReportStore:
        """The shared report store backing this runner's memo."""
        return self._store

    @property
    def cache_hits(self) -> int:
        """Logical cache hits: store hits plus coalesced waits."""
        return self._store.hits + self._store.coalesced

    @property
    def cache_misses(self) -> int:
        """Cache misses — points actually executed (or fanned out)."""
        return self._store.misses

    def stats(self) -> dict:
        """Cache hit/miss/latency counters, shared with the serve layer.

        One instrumentation point for every execution path: direct
        :meth:`run_engine` calls, :meth:`run_engine_many` batches (sweeps,
        fabric workers) and the service's coalesced requests all count
        into the same :class:`ReportStore` snapshot.
        """
        return self._store.stats()

    # ------------------------------------------------------------------
    @property
    def _memory_cache(self) -> dict[str, dict]:
        """Legacy alias for the store's memory tier (tests share memos)."""
        return self._store._memory

    @_memory_cache.setter
    def _memory_cache(self, value: dict[str, dict]) -> None:
        self._store._memory = value

    def _cache_load(self, key: str, kind: str) -> dict | None:
        return self._store.load(key, kind)

    def _cache_store(self, key: str, payload: dict, kind: str) -> None:
        self._store.store(key, payload, kind)

    @staticmethod
    def _cache_kind(engine: Engine) -> str:
        return "sim" if engine.kind == "simulation" else "baseline"

    def _effective_engine(self, engine: Engine | str) -> Engine:
        """Resolve a name and apply the runner's forced backend, if any."""
        engine = resolve_engine(engine)
        if self._engine is not None and engine.backend != self._engine:
            engine = engine.using_backend(self._engine)
        return engine

    # ------------------------------------------------------------------
    # The unified entry points: any registered engine, cost reports out
    # ------------------------------------------------------------------
    def point_key(self, engine: Engine | str,
                  matrix_a: CSRMatrix | None, *,
                  matrix_b: CSRMatrix | None = None,
                  fingerprint_a: str | None = None,
                  fingerprint_b: str | None = None) -> str:
        """The cache key :meth:`run_engine` would memoise this point under.

        Applies the runner's forced backend (and its backend-specific
        keying), exactly as the execution path does — this is the
        fingerprint the sweep :class:`~repro.sweeps.store.ResultStore`
        records per cell, linking a sweep's results to the runner's memo.
        Precomputed operand fingerprints are forwarded to
        :func:`engine_point_key` (with ``fingerprint_a`` given,
        ``matrix_a`` may be ``None``).
        """
        engine = self._effective_engine(engine)
        return engine_point_key(engine, matrix_a, matrix_b,
                                include_backend=self._engine is not None,
                                fingerprint_a=fingerprint_a,
                                fingerprint_b=fingerprint_b)

    def run_engine(self, engine: Engine | str, matrix_a: CSRMatrix, *,
                   matrix_b: CSRMatrix | None = None) -> CostReport:
        """Run one ``A · B`` point (``B = A`` by default), memoised.

        Returns the point's :class:`CostReport` only — the functional
        result matrix is not cached (no experiment consumes it; the
        differential and property tests exercise it directly through the
        engines).
        """
        engine = self._effective_engine(engine)
        key = engine_point_key(engine, matrix_a, matrix_b,
                               include_backend=self._engine is not None)
        payload, _ = self._store.get_or_compute(
            key, self._cache_kind(engine),
            lambda: _engine_task((engine, matrix_a, matrix_b)))
        return CostReport.from_dict(payload)

    def run_engine_keyed(self, engine: Engine | str, *, key: str,
                         matrix_supplier, setup=None
                         ) -> tuple[CostReport, str]:
        """Run one pre-keyed point whose operand may not be materialised.

        The serving path: the request's :meth:`point_key` is computed from
        the scenario's recipe fingerprint, so a cached point is answered
        without ever building its operand — ``matrix_supplier`` is only
        called when this thread actually executes the engine.  Duplicate
        concurrent calls coalesce into one execution through the store.

        Args:
            engine: engine instance or registry name.
            key: this point's :meth:`point_key`.
            matrix_supplier: zero-argument callable building the operand.
            setup: optional zero-argument callable run by the computing
                thread before the engine (the service's debug delay hook).

        Returns:
            ``(report, outcome)`` with the store outcome — ``"hit"``,
            ``"coalesced"`` or ``"computed"``.
        """
        engine = self._effective_engine(engine)

        def compute() -> dict:
            if setup is not None:
                setup()
            return _engine_task((engine, matrix_supplier(), None))

        payload, outcome = self._store.get_or_compute(
            key, self._cache_kind(engine), compute)
        return CostReport.from_dict(payload), outcome

    def run_engine_many(self, tasks: list[tuple[Engine | str, CSRMatrix]],
                        *, keys: list[str] | None = None,
                        timeout: float | None = None
                        ) -> list[CostReport | None]:
        """Run many ``A · A`` points, fanning uncached ones out.

        Args:
            tasks: ``(engine, matrix)`` pairs; order is preserved in the
                returned list and duplicate points compute once.
            keys: optional precomputed :meth:`point_key` values aligned
                with ``tasks`` — grid callers that already fingerprinted
                every point (the sweeps driver) skip re-hashing each
                operand's CSR arrays per task.
            timeout: per-point wall-clock budget in seconds.  With a
                timeout set, uncached points run in dedicated killable
                processes (see :func:`run_tasks_with_timeout`) and a point
                that hangs past its budget — or raises — yields ``None``
                in the returned list instead of a report: *failed but
                retryable*, never cached, so a later run re-attempts it.
                Without a timeout (the default) the returned list never
                contains ``None`` and engine errors propagate.
        """
        engines = [self._effective_engine(engine) for engine, _ in tasks]
        forced = self._engine is not None
        if keys is None:
            keys = [engine_point_key(engine, matrix, None,
                                     include_backend=forced)
                    for engine, (_, matrix) in zip(engines, tasks)]
        elif len(keys) != len(tasks):
            raise ValueError(
                f"keys length {len(keys)} does not match "
                f"{len(tasks)} tasks"
            )
        kinds = [self._cache_kind(engine) for engine in engines]

        missing: dict[str, tuple[Engine, CSRMatrix, None]] = {}
        missing_kinds: dict[str, str] = {}
        for engine, (_, matrix), key, kind in zip(engines, tasks, keys, kinds):
            if self._cache_load(key, kind) is None and key not in missing:
                missing[key] = (engine, matrix, None)
                missing_kinds[key] = kind

        self._store.record_batch(hits=len(keys) - len(missing),
                                 misses=len(missing))
        if missing:
            items = list(missing.items())
            if timeout is not None:
                outcomes = run_tasks_with_timeout(items, timeout=timeout,
                                                  jobs=self._jobs)
                for key, payload in outcomes.items():
                    # Only successful points enter the memo: a timed-out or
                    # failed point stays uncached so a retry really retries.
                    if isinstance(payload, dict):
                        self._cache_store(key, payload, missing_kinds[key])
            elif self._jobs > 1 and len(items) > 1:
                with ProcessPoolExecutor(max_workers=self._jobs) as pool:
                    payloads = list(pool.map(_engine_task,
                                             [task for _, task in items]))
            else:
                payloads = [_engine_task(task) for _, task in items]
            if timeout is None:
                for (key, _), payload in zip(items, payloads):
                    self._cache_store(key, payload, missing_kinds[key])

        reports: list[CostReport | None] = []
        for key, kind in zip(keys, kinds):
            payload = self._cache_load(key, kind)
            reports.append(CostReport.from_dict(payload)
                           if payload is not None else None)
        if timeout is None:
            assert all(report is not None for report in reports)
        return reports

    # ------------------------------------------------------------------
    # SpArch views (native SimulationStats out)
    # ------------------------------------------------------------------
    def simulate(self, matrix_a: CSRMatrix, config: SpArchConfig | None = None,
                 *, matrix_b: CSRMatrix | None = None) -> SimulationStats:
        """Simulate ``A · B`` (``B = A`` by default), memoised.

        A view over :meth:`run_engine`: the native statistics are rebuilt
        losslessly from the memoised report's ``detail`` payload.
        """
        return self.simulate_report(matrix_a, config,
                                    matrix_b=matrix_b).to_stats()

    def simulate_report(self, matrix_a: CSRMatrix,
                        config: SpArchConfig | None = None, *,
                        matrix_b: CSRMatrix | None = None) -> CostReport:
        """Simulate ``A · B`` and return the point's :class:`CostReport`."""
        return self.run_engine(SpArchEngine(config or SpArchConfig()),
                               matrix_a, matrix_b=matrix_b)

    def simulate_many(self, tasks: list[tuple[CSRMatrix, SpArchConfig | None]]
                      ) -> list[SimulationStats]:
        """Simulate many ``A · A`` points, fanning uncached ones out."""
        reports = self.run_engine_many(
            [(SpArchEngine(config or SpArchConfig()), matrix)
             for matrix, config in tasks])
        return [report.to_stats() for report in reports]

    def simulate_workload(self, workload: dict[str, tuple[CSRMatrix, SpArchConfig | None]]
                          ) -> dict[str, SimulationStats]:
        """Simulate a named ``{name: (matrix, config)}`` workload."""
        names = list(workload)
        stats = self.simulate_many([workload[name] for name in names])
        return dict(zip(names, stats))

    # ------------------------------------------------------------------
    # Baseline views (native BaselineSummary out)
    # ------------------------------------------------------------------
    def run_baseline(self, baseline: SpGEMMBaseline, matrix_a: CSRMatrix, *,
                     matrix_b: CSRMatrix | None = None) -> BaselineSummary:
        """Run one baseline point (``B = A`` by default), memoised."""
        report = self.run_engine(BaselineEngineAdapter(baseline), matrix_a,
                                 matrix_b=matrix_b)
        return report.to_baseline_summary()

    def run_baseline_many(self, tasks: list[tuple[SpGEMMBaseline, CSRMatrix]]
                          ) -> list[BaselineSummary]:
        """Run many baseline ``A · A`` points, fanning uncached ones out."""
        reports = self.run_engine_many(
            [(BaselineEngineAdapter(baseline), matrix)
             for baseline, matrix in tasks])
        return [report.to_baseline_summary() for report in reports]


_default_runner: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """Process-wide runner used when a harness is called without one.

    Honours ``REPRO_CACHE_DIR`` (disk cache location; unset keeps the cache
    in memory) and ``REPRO_JOBS`` (fan-out width, default 1).
    """
    global _default_runner
    if _default_runner is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
        jobs = int(os.environ.get(JOBS_ENV, "1") or "1")
        _default_runner = ExperimentRunner(cache_dir=cache_dir, jobs=jobs)
    return _default_runner


def set_default_runner(runner: ExperimentRunner | None) -> None:
    """Install (or with ``None``, reset) the process-wide default runner."""
    global _default_runner
    _default_runner = runner
