"""The registered ``sweep`` experiment: a corpus sweep as a harness.

Runs one registered :class:`~repro.sweeps.spec.SweepSpec` (the Figure 17
design-space grid by default, re-expressed over the corpus layer) through
the sharded driver and summarises the result store per (engine, config)
group — the same geomean-GFLOP/s / DRAM-bytes quantities Figure 17 plots.
Because it is a registered experiment, the sweep inherits the whole CLI
surface for free: ``--json`` emits the unified payload with every cell's
:class:`~repro.metrics.report.CostReport` attached, ``--reports`` prints
them as one cost table, and ``--jobs``/``--cache-dir`` fan out and memoise
through the shared runner.

``python -m repro.sweeps`` remains the operational interface (shards,
resumable stores, merge/summarise of shard artifacts); this harness is the
paper-facing view of the same machinery.

Note:
    ``repro.sweeps`` is imported lazily inside :func:`run`: the experiment
    registry imports this module eagerly, while the sweeps registry imports
    :mod:`repro.experiments.designspace` for the shared Figure 17 grid — a
    top-level import here would close that cycle.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.designspace import geomean_gflops

#: Headline design points of the Figure 17 grid (the default sweep) —
#: the fig17 harness's values, one definition for both views of the grid.
from repro.experiments.fig17_dse import PAPER_METRICS
from repro.experiments.runner import ExperimentRunner, default_runner


def run(*, sweep: str = "fig17-dse", shard_index: int = 0,
        shard_count: int = 1, store_path: str | None = None,
        max_rows: int | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Execute a registered sweep and summarise its result store.

    Args:
        sweep: sweep registry id (``python -m repro.sweeps --list``).
        shard_index / shard_count: deterministic cell slice to own —
            harness runs default to the whole grid.
        store_path: append results to (and resume from) this JSONL store;
            ``None`` keeps the store in memory for the harness run.
        max_rows: cap the corpus scenario dimensions (the standard
            experiment ``--max-rows`` contract).
        runner: experiment runner providing memoised/batched execution.
    """
    from repro.sweeps.driver import group_reports, run_sweep, summarise_groups
    from repro.sweeps.registry import get_sweep
    from repro.sweeps.store import merge_records, records_to_reports

    spec = get_sweep(sweep)
    runner = runner or default_runner()
    summary, store = run_sweep(spec, store=store_path, runner=runner,
                               shard_index=shard_index,
                               shard_count=shard_count, max_rows=max_rows)
    # A shared store may hold other sweeps' cells; this harness reports
    # exactly the requested sweep's grid.
    records = [record for record in merge_records(store.records)
               if record.sweep_id == spec.sweep_id]

    # One deserialisation pass feeds the attached per-cell reports, the
    # grouped summary table and the headline metrics alike.
    cell_reports = records_to_reports(records)
    groups = group_reports(records, reports=cell_reports)
    table = summarise_groups(
        groups, title=f"Corpus sweep '{spec.sweep_id}' — {spec.title}")
    metrics: dict[str, float] = {"cells": float(summary.cells_grid)}
    for (engine, label), reports in groups.items():
        group = f"{engine}|{label}"
        metrics[f"gflops[{group}]"] = geomean_gflops(reports)
        metrics[f"dram[{group}]"] = float(sum(report.dram_bytes
                                              for report in reports))

    notes = [summary.render()]
    if store.path is not None:
        notes.append(f"result store: {store.path}")
    return ExperimentResult(
        experiment_id="sweep",
        title=f"Corpus sweep ({spec.sweep_id})",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_METRICS) if sweep == "fig17-dse" else {},
        notes=notes,
        reports=cell_reports,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
