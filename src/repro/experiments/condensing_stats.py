"""Ablation: matrix-condensing statistics and prefetcher hit rate.

Two of the paper's quantitative claims are not tied to a single figure:

* matrix condensing "reduces the number of partial matrices by three orders
  of magnitude" — from ~10⁵ original columns to ~10²–10³ condensed columns
  (§II-B, Figure 7);
* "the row buffer can achieve a 62 % hit rate, thus reducing DRAM access of
  the second matrix by 2.6×" (§I / §II-D).

This harness measures both on the benchmark suite: the condensation ratio
of the *full-size* matrices (computable from the published row-length
statistics without simulating them) and of the scaled proxies, plus the
simulated prefetch-buffer hit rate and right-operand traffic reduction.
"""

from __future__ import annotations

from repro.core.condensing import condensation_ratio
from repro.core.config import SpArchConfig
from repro.experiments.common import ExperimentResult, load_scaled_suite, simulate
from repro.experiments.runner import ExperimentRunner
from repro.formats.condensed import CondensedMatrix
from repro.formats.csr import CSRMatrix
from repro.matrices.suite import get_benchmark_spec
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table

PAPER_METRICS = {
    "geomean_condensation_ratio": 1000.0,   # "three orders of magnitude"
    "geomean_hit_rate": 0.62,
    "geomean_b_traffic_reduction": 2.6,
}


def run(*, max_rows: int = 2000, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Measure condensation ratios and prefetcher effectiveness."""
    config = config or SpArchConfig()
    if matrices is not None:
        workload = {name: (matrix, config) for name, matrix in matrices.items()}
    else:
        workload = load_scaled_suite(max_rows=max_rows, names=names,
                                     base_config=config)

    table = Table(
        title="Matrix condensing and row-prefetcher statistics",
        columns=["matrix", "condensed cols", "condensation ratio",
                 "buffer hit rate", "B-traffic reduction"],
    )
    ratios, hit_rates, reductions = [], [], []
    for name, (matrix, matrix_config) in workload.items():
        condensed = CondensedMatrix(matrix)
        ratio = condensation_ratio(matrix)
        with_prefetcher = simulate(matrix, matrix_config, runner=runner)
        without_prefetcher = simulate(
            matrix, matrix_config.with_features(row_prefetcher=False),
            runner=runner)
        b_with = _b_read_bytes(with_prefetcher)
        b_without = _b_read_bytes(without_prefetcher)
        reduction = b_without / max(1, b_with)

        ratios.append(max(ratio, 1e-9))
        hit_rates.append(max(with_prefetcher.prefetch_hit_rate, 1e-9))
        reductions.append(max(reduction, 1e-9))
        table.add_row(name, condensed.num_condensed_columns, ratio,
                      with_prefetcher.prefetch_hit_rate, reduction)

    # Condensation ratio of the *original* (un-scaled) matrices, estimated
    # from the published sizes: occupied columns ≈ num_cols for these
    # matrices (every column of a connected graph/mesh has nonzeros), and the
    # condensed column count of the proxy is representative of the original's
    # longest row because the generators preserve the row-length profile.
    full_scale_ratios = []
    for name, (matrix, _) in workload.items():
        try:
            spec = get_benchmark_spec(name)
        except KeyError:
            continue
        condensed_columns = max(1, CondensedMatrix(matrix).num_condensed_columns)
        full_scale_ratios.append(spec.num_cols / condensed_columns)

    metrics = {
        "geomean_condensation_ratio": (geometric_mean(full_scale_ratios)
                                       if full_scale_ratios
                                       else geometric_mean(ratios)),
        "geomean_proxy_condensation_ratio": geometric_mean(ratios),
        "geomean_hit_rate": geometric_mean(hit_rates),
        "geomean_b_traffic_reduction": geometric_mean(reductions),
    }
    table.add_row("Geo Mean", "-", metrics["geomean_proxy_condensation_ratio"],
                  metrics["geomean_hit_rate"],
                  metrics["geomean_b_traffic_reduction"])
    return ExperimentResult(
        experiment_id="condense",
        title="Matrix condensing and prefetcher ablation (§II-B, §II-D)",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_METRICS),
        notes=["full-scale condensation ratio uses the published column "
               "counts with the proxy's condensed-column count"],
    )


def _b_read_bytes(stats) -> int:
    from repro.memory.traffic import TrafficCategory

    return stats.traffic.bytes_by_category[TrafficCategory.MATRIX_B_READ]


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
