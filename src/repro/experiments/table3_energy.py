"""Table III — energy and area breakdown per component (nJ/FLOP, mm²).

The paper splits energy per useful FLOP into computation, SRAM, DRAM and
(for OuterSPACE) crossbar contributions: 0.89 nJ/FLOP overall for SpArch
versus 4.95 nJ/FLOP for OuterSPACE, and 28.5 mm² versus 86.7 mm² of area.
SpArch's numbers come from the per-event energy model evaluated over the
benchmark suite; OuterSPACE's come from its modelled runtime and published
power/area.
"""

from __future__ import annotations

from repro.analysis.area import AreaModel, OUTERSPACE_TOTAL_AREA_MM2
from repro.analysis.energy import EnergyModel
from repro.baselines.outerspace import OuterSpaceAccelerator
from repro.core.config import SpArchConfig
from repro.engines.adapters import BaselineEngineAdapter
from repro.engines.sparch import SpArchEngine
from repro.experiments.common import ExperimentResult, load_scaled_suite
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.utils.reporting import Table

#: Table III as published (nJ/FLOP and mm²).
PAPER_TABLE3 = {
    "energy_per_flop[SpArch]": 0.89,
    "energy_per_flop[OuterSPACE]": 4.95,
    "area_mm2[SpArch]": 28.5,
    "area_mm2[OuterSPACE]": 86.7,
}


def run(*, max_rows: int = 800, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce the Table III energy/area breakdown."""
    config = config or SpArchConfig()
    if matrices is not None:
        workload = {name: (matrix, config) for name, matrix in matrices.items()}
    else:
        workload = load_scaled_suite(max_rows=max_rows, names=names,
                                     base_config=config)

    energy_model = EnergyModel()
    runner = runner or default_runner()

    # Both systems come back as canonical CostReports; the Table III
    # category split is the uniform report view of the energy model
    # (module grouping for SpArch, per-event accounting for baselines).
    names_in_order = list(workload)
    sparch_reports = dict(zip(names_in_order, runner.run_engine_many(
        [(SpArchEngine(matrix_config or config), matrix)
         for _, (matrix, matrix_config) in workload.items()])))
    outerspace_reports = dict(zip(names_in_order, runner.run_engine_many(
        [(BaselineEngineAdapter(OuterSpaceAccelerator()), matrix)
         for _, (matrix, _) in workload.items()])))

    sparch_categories = {"Computation": 0.0, "SRAM": 0.0, "DRAM": 0.0}
    sparch_flops = 0
    outerspace_energy = 0.0
    outerspace_flops = 0
    for name in names_in_order:
        report = sparch_reports[name]
        for category, joules in energy_model.report_categories(report).items():
            sparch_categories[category] += joules
        sparch_flops += report.flops

        outer_report = outerspace_reports[name]
        outerspace_energy += outer_report.energy_joules
        outerspace_flops += outer_report.flops

    sparch_per_flop = {category: 1e9 * value / max(1, sparch_flops)
                       for category, value in sparch_categories.items()}
    sparch_total = sum(sparch_per_flop.values())
    outerspace_per_flop = 1e9 * outerspace_energy / max(1, outerspace_flops)

    area_model = AreaModel()
    area = area_model.breakdown(config)
    sparch_compute_area = area.multiplier_array + area.merge_tree
    sparch_sram_area = (area.column_fetcher + area.row_prefetcher
                        + area.partial_matrix_writer)

    table = Table(
        title="Table III — energy and area breakdown",
        columns=["component", "SpArch nJ/FLOP", "paper", "SpArch mm²", "paper"],
    )
    table.add_row("Computation", sparch_per_flop["Computation"], 0.26,
                  sparch_compute_area, 4.1)
    table.add_row("SRAM", sparch_per_flop["SRAM"], 0.34, sparch_sram_area, 24.4)
    table.add_row("DRAM", sparch_per_flop["DRAM"], 0.29, "-", "-")
    table.add_row("Overall", sparch_total, 0.89, area.total, 28.5)
    table.add_row("OuterSPACE overall", outerspace_per_flop, 4.95,
                  OUTERSPACE_TOTAL_AREA_MM2, 86.7)

    metrics = {
        "energy_per_flop[SpArch]": sparch_total,
        "energy_per_flop[OuterSPACE]": outerspace_per_flop,
        "area_mm2[SpArch]": area.total,
        "area_mm2[OuterSPACE]": OUTERSPACE_TOTAL_AREA_MM2,
        "energy_ratio": outerspace_per_flop / max(sparch_total, 1e-12),
    }
    return ExperimentResult(
        experiment_id="table3",
        title="Energy and area breakdown (Table III)",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_TABLE3),
        reports={**{f"SpArch[{name}]": report
                    for name, report in sparch_reports.items()},
                 **{f"OuterSPACE[{name}]": report
                    for name, report in outerspace_reports.items()}},
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
