"""Figure 13 — area and power breakdown per module.

The paper reports that the merge tree, as the core of SpArch, takes 60.6 %
of the area and 55.4 % of the power, with HBM at 26.2 % of power and the row
prefetcher at 20.4 % of area / 13.5 % of power.  This harness evaluates the
area model for the Table I configuration and the energy model over the
benchmark suite and prints both breakdowns.
"""

from __future__ import annotations

from repro.analysis.area import AreaModel, PAPER_AREA_MM2
from repro.analysis.energy import EnergyBreakdown, EnergyModel
from repro.core.config import SpArchConfig
from repro.experiments.common import (
    ExperimentResult,
    load_scaled_suite,
    simulate_workload,
)
from repro.experiments.runner import ExperimentRunner
from repro.formats.csr import CSRMatrix
from repro.utils.reporting import Table

#: Power fractions reported in Figure 13(b).
PAPER_POWER_FRACTIONS = {
    "Column Fetcher": 0.012,
    "Row Prefetcher": 0.135,
    "Multiplier Array": 0.009,
    "Merge Tree": 0.554,
    "Partial Mat Writer": 0.028,
    "HBM": 0.262,
}


def run(*, max_rows: int = 800, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce the Figure 13 area and power breakdowns."""
    config = config or SpArchConfig()
    if matrices is not None:
        workload = {name: (matrix, config) for name, matrix in matrices.items()}
    else:
        workload = load_scaled_suite(max_rows=max_rows, names=names,
                                     base_config=config)

    area = AreaModel().breakdown(config)
    area_total = area.total

    # Power is energy-weighted across the suite (each matrix squared).
    energy_model = EnergyModel()
    accumulated = EnergyBreakdown()
    total_runtime = 0.0
    sparch_stats = simulate_workload(workload, runner=runner)
    for name, (matrix, matrix_config) in workload.items():
        stats = sparch_stats[name]
        breakdown = energy_model.breakdown(stats, matrix_config)
        accumulated.column_fetcher += breakdown.column_fetcher
        accumulated.row_prefetcher += breakdown.row_prefetcher
        accumulated.multiplier_array += breakdown.multiplier_array
        accumulated.merge_tree += breakdown.merge_tree
        accumulated.partial_matrix_writer += breakdown.partial_matrix_writer
        accumulated.hbm += breakdown.hbm
        total_runtime += stats.runtime_seconds

    energy_fractions = accumulated.fractions()
    table = Table(
        title="Figure 13 — area (a) and power (b) breakdown",
        columns=["module", "area mm²", "area %", "paper area mm²",
                 "power %", "paper power %"],
    )
    metrics: dict[str, float] = {}
    paper_values: dict[str, float] = {}
    for module, area_mm2 in area.by_module().items():
        power_fraction = energy_fractions.get(module, 0.0)
        table.add_row(module, area_mm2, 100.0 * area_mm2 / area_total,
                      PAPER_AREA_MM2.get(module, 0.0),
                      100.0 * power_fraction,
                      100.0 * PAPER_POWER_FRACTIONS.get(module, 0.0))
        metrics[f"area_fraction[{module}]"] = area_mm2 / area_total
        metrics[f"power_fraction[{module}]"] = power_fraction
        paper_values[f"power_fraction[{module}]"] = PAPER_POWER_FRACTIONS.get(module, 0.0)
    table.add_row("HBM", 0.0, 0.0, 0.0,
                  100.0 * energy_fractions["HBM"],
                  100.0 * PAPER_POWER_FRACTIONS["HBM"])
    metrics["power_fraction[HBM]"] = energy_fractions["HBM"]
    paper_values["power_fraction[HBM]"] = PAPER_POWER_FRACTIONS["HBM"]
    metrics["total_area_mm2"] = area_total
    paper_values["total_area_mm2"] = 28.49
    metrics["average_power_watts"] = (accumulated.total / total_runtime
                                      if total_runtime > 0 else 0.0)
    paper_values["average_power_watts"] = 9.26

    return ExperimentResult(
        experiment_id="fig13",
        title="Area and power breakdown (Figure 13)",
        table=table,
        metrics=metrics,
        paper_values=paper_values,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
