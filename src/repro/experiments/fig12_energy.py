"""Figure 12 — energy saving of SpArch over the five baselines.

The paper reports per-matrix energy savings with geometric means of 6×,
164×, 435×, 307× and 62× over OuterSPACE, MKL, cuSPARSE, CUSP and ARM
Armadillo.  SpArch's energy comes from the per-event model of
:mod:`repro.analysis.energy`; each baseline's energy is its modelled runtime
times the platform's dynamic power (the same methodology the paper uses with
measured powers).
"""

from __future__ import annotations

from repro.baselines import SpGEMMBaseline
from repro.core.config import SpArchConfig
from repro.experiments.common import (
    ExperimentResult,
    gather_comparison_reports,
    load_scaled_suite,
)
from repro.experiments.fig11_speedup import default_baselines
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table

#: Geometric-mean energy savings reported by the paper (Figure 12).
PAPER_GEOMEAN_ENERGY_SAVING = {
    "OuterSPACE": 6.07,
    "MKL": 163.89,
    "cuSPARSE": 435.27,
    "CUSP": 306.71,
    "Armadillo": 62.20,
}


def run(*, max_rows: int = 1000, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        config: SpArchConfig | None = None,
        baselines: list[SpGEMMBaseline] | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce Figure 12 on the (scaled) benchmark suite."""
    config = config or SpArchConfig()
    if matrices is not None:
        workload = {name: (matrix, config) for name, matrix in matrices.items()}
    else:
        workload = load_scaled_suite(max_rows=max_rows, names=names,
                                     base_config=config)
    baselines = baselines if baselines is not None else default_baselines()
    runner = runner or default_runner()

    columns = ["matrix"] + [f"over {b.name}" for b in baselines]
    table = Table(title="Figure 12 — energy saving of SpArch over baselines",
                  columns=columns)

    # The unified CostReport carries each point's headline energy (the
    # per-event module sum for SpArch, modelled runtime × power for the
    # baselines — the paper's Figure 12 methodology), so the saving is one
    # ratio of two reports.
    sparch_reports, baseline_reports = gather_comparison_reports(
        workload, baselines, runner=runner)
    reports = {f"SpArch[{name}]": report
               for name, report in sparch_reports.items()}
    savings: dict[str, list[float]] = {b.name: [] for b in baselines}
    for name in workload:
        sparch_energy = sparch_reports[name].energy_joules
        row: list[object] = [name]
        for index, baseline in enumerate(baselines):
            report = baseline_reports[(name, index)]
            reports[f"{baseline.name}[{name}]"] = report
            saving = report.energy_joules / max(sparch_energy, 1e-18)
            savings[baseline.name].append(saving)
            row.append(saving)
        table.add_row(*row)

    geomeans = {name: geometric_mean(values) for name, values in savings.items()}
    table.add_row("Geo Mean", *[geomeans[b.name] for b in baselines])

    metrics = {f"geomean_energy_saving[{name}]": value
               for name, value in geomeans.items()}
    paper_values = {f"geomean_energy_saving[{name}]": value
                    for name, value in PAPER_GEOMEAN_ENERGY_SAVING.items()
                    if f"geomean_energy_saving[{name}]" in metrics}
    return ExperimentResult(
        experiment_id="fig12",
        title="Energy saving over OuterSPACE, MKL, cuSPARSE, CUSP, Armadillo (Figure 12)",
        table=table,
        metrics=metrics,
        paper_values=paper_values,
        notes=[f"benchmark proxies capped at {max_rows} rows with "
               "proxy-scaled on-chip buffers (DESIGN.md §3, EXPERIMENTS.md)"],
        reports=reports,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
