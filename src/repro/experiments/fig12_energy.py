"""Figure 12 — energy saving of SpArch over the five baselines.

The paper reports per-matrix energy savings with geometric means of 6×,
164×, 435×, 307× and 62× over OuterSPACE, MKL, cuSPARSE, CUSP and ARM
Armadillo.  SpArch's energy comes from the per-event model of
:mod:`repro.analysis.energy`; each baseline's energy is its modelled runtime
times the platform's dynamic power (the same methodology the paper uses with
measured powers).
"""

from __future__ import annotations

from repro.analysis.energy import EnergyModel
from repro.baselines import SpGEMMBaseline
from repro.core.config import SpArchConfig
from repro.experiments.common import (
    ExperimentResult,
    load_scaled_suite,
    simulate_workload,
)
from repro.experiments.fig11_speedup import default_baselines
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table

#: Geometric-mean energy savings reported by the paper (Figure 12).
PAPER_GEOMEAN_ENERGY_SAVING = {
    "OuterSPACE": 6.07,
    "MKL": 163.89,
    "cuSPARSE": 435.27,
    "CUSP": 306.71,
    "Armadillo": 62.20,
}


def run(*, max_rows: int = 1000, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        config: SpArchConfig | None = None,
        baselines: list[SpGEMMBaseline] | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce Figure 12 on the (scaled) benchmark suite."""
    config = config or SpArchConfig()
    if matrices is not None:
        workload = {name: (matrix, config) for name, matrix in matrices.items()}
    else:
        workload = load_scaled_suite(max_rows=max_rows, names=names,
                                     base_config=config)
    baselines = baselines if baselines is not None else default_baselines()
    runner = runner or default_runner()
    energy_model = EnergyModel()

    columns = ["matrix"] + [f"over {b.name}" for b in baselines]
    table = Table(title="Figure 12 — energy saving of SpArch over baselines",
                  columns=columns)

    sparch_stats = simulate_workload(workload, runner=runner)
    baseline_summaries = runner.run_baseline_many(
        [(baseline, matrix) for _, (matrix, _) in workload.items()
         for baseline in baselines])
    savings: dict[str, list[float]] = {b.name: [] for b in baselines}
    summaries = iter(baseline_summaries)
    for name, (matrix, matrix_config) in workload.items():
        sparch_energy = energy_model.total_energy(sparch_stats[name],
                                                  matrix_config)
        row: list[object] = [name]
        for baseline in baselines:
            summary = next(summaries)
            saving = summary.energy_joules / max(sparch_energy, 1e-18)
            savings[baseline.name].append(saving)
            row.append(saving)
        table.add_row(*row)

    geomeans = {name: geometric_mean(values) for name, values in savings.items()}
    table.add_row("Geo Mean", *[geomeans[b.name] for b in baselines])

    metrics = {f"geomean_energy_saving[{name}]": value
               for name, value in geomeans.items()}
    paper_values = {f"geomean_energy_saving[{name}]": value
                    for name, value in PAPER_GEOMEAN_ENERGY_SAVING.items()
                    if f"geomean_energy_saving[{name}]" in metrics}
    return ExperimentResult(
        experiment_id="fig12",
        title="Energy saving over OuterSPACE, MKL, cuSPARSE, CUSP, Armadillo (Figure 12)",
        table=table,
        metrics=metrics,
        paper_values=paper_values,
        notes=[f"benchmark proxies capped at {max_rows} rows with "
               "proxy-scaled on-chip buffers (DESIGN.md §3, EXPERIMENTS.md)"],
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
