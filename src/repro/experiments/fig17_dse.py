"""Figure 17 — design space exploration of buffers and comparator arrays.

The paper sweeps four parameters around the Table I design point:

* (a) prefetch buffer *line size* (1024 lines × 24…96 elements) — longer
  lines reduce DRAM access with diminishing returns; 48 is chosen.
* (b) prefetch buffer *shape* at fixed capacity (2048×24 … 256×192) — more,
  shorter lines reduce DRAM access; 1024×48 is chosen.
* (c) comparator array size (1×1 … 16×16) — performance scales linearly
  while compute-bound, then saturates when memory-bound; 16×16 is chosen.
* (d) look-ahead FIFO size (1024 … 16384) — larger FIFOs improve the
  replacement decisions until the round-startup cost dominates; 8192 is
  chosen.
"""

from __future__ import annotations

from repro.core.config import SpArchConfig
from repro.experiments.common import ExperimentResult, default_suite
from repro.experiments.designspace import summarise_grid, sweep_grid
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.utils.reporting import Table

#: Sweep points of Figure 17, matching the paper's x-axes.
LINE_SIZE_SWEEP = (24, 36, 48, 60, 72, 84, 96)
BUFFER_SHAPE_SWEEP = ((2048, 24), (1024, 48), (512, 96), (256, 192))
COMPARATOR_SWEEP = (1, 2, 4, 8, 16)
LOOKAHEAD_SWEEP = (1024, 2048, 4096, 8192, 16384)

PAPER_METRICS = {
    "chosen_line_elements": 48,
    "chosen_buffer_lines": 1024,
    "chosen_comparator_size": 16,
    "chosen_lookahead": 8192,
}


def _sweep(matrices: dict[str, CSRMatrix], configs: dict[str, SpArchConfig],
           runner: ExperimentRunner) -> dict[str, tuple[float, float]]:
    """Run every config over the matrices; return geomean GFLOPS and bytes.

    A thin view over :func:`repro.experiments.designspace.sweep_grid`:
    results come back keyed per ``(config, matrix)`` cell instead of being
    sliced out of one flat list by index arithmetic.
    """
    return summarise_grid(sweep_grid(configs, matrices, runner=runner))


def run(*, max_rows: int = 800, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        base_config: SpArchConfig | None = None,
        buffer_scale: int = 16,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce the four Figure 17 sweeps.

    Args:
        max_rows: proxy dimension cap.
        names: benchmark subset (a prefetcher-sensitive subset by default).
        matrices: explicit matrices to sweep instead of the generated suite.
        base_config: configuration the sweeps perturb (Table I by default).
        buffer_scale: the prefetch buffer and look-ahead FIFO sweeps are
            divided by this factor so the scaled-down proxies exercise the
            same capacity-pressure regime as the paper's full-size matrices
            (a 1024-line buffer would trivially hold every scaled proxy).
    """
    base_config = base_config or SpArchConfig()
    runner = runner or default_runner()
    if matrices is None:
        if names is None:
            names = ["wiki-Vote", "facebook", "email-Enron", "ca-CondMat",
                     "p2p-Gnutella31"]
        matrices = default_suite(max_rows=max_rows, names=names)

    table = Table(
        title="Figure 17 — design space exploration",
        columns=["sweep", "point", "GFLOP/s", "DRAM bytes"],
    )
    metrics: dict[str, float] = {}

    # (a) line size at a fixed number of (scaled) lines.
    lines = max(4, base_config.prefetch_buffer_lines // buffer_scale)
    configs = {
        f"{lines}x{line}": base_config.replace(prefetch_buffer_lines=lines,
                                               prefetch_line_elements=line)
        for line in LINE_SIZE_SWEEP
    }
    for label, (gflops, dram) in _sweep(matrices, configs, runner).items():
        table.add_row("(a) line size", label, gflops, dram)
        metrics[f"gflops[line:{label.split('x')[1]}]"] = gflops
        metrics[f"dram[line:{label.split('x')[1]}]"] = dram

    # (b) buffer shape at fixed total capacity.
    configs = {}
    for shape_lines, shape_elements in BUFFER_SHAPE_SWEEP:
        scaled_lines = max(2, shape_lines // buffer_scale)
        configs[f"{shape_lines}x{shape_elements}"] = base_config.replace(
            prefetch_buffer_lines=scaled_lines,
            prefetch_line_elements=shape_elements)
    for label, (gflops, dram) in _sweep(matrices, configs, runner).items():
        table.add_row("(b) buffer shape", label, gflops, dram)
        metrics[f"gflops[shape:{label}]"] = gflops
        metrics[f"dram[shape:{label}]"] = dram

    # (c) comparator array size.
    configs = {
        f"{size}x{size}": base_config.replace(merger_width=size,
                                              merger_chunk_size=min(4, size))
        for size in COMPARATOR_SWEEP
    }
    for label, (gflops, dram) in _sweep(matrices, configs, runner).items():
        table.add_row("(c) comparator array", label, gflops, dram)
        metrics[f"gflops[comparator:{label.split('x')[0]}]"] = gflops

    # (d) look-ahead FIFO size.
    configs = {
        str(size): base_config.replace(
            lookahead_fifo_elements=max(16, size // buffer_scale),
            prefetch_buffer_lines=max(4, base_config.prefetch_buffer_lines
                                      // buffer_scale))
        for size in LOOKAHEAD_SWEEP
    }
    for label, (gflops, dram) in _sweep(matrices, configs, runner).items():
        table.add_row("(d) look-ahead FIFO", label, gflops, dram)
        metrics[f"gflops[lookahead:{label}]"] = gflops
        metrics[f"dram[lookahead:{label}]"] = dram

    return ExperimentResult(
        experiment_id="fig17",
        title="Design space exploration (Figure 17)",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_METRICS),
        notes=[f"buffer/FIFO capacities divided by {buffer_scale} to match the "
               f"scaled proxies' working sets (see EXPERIMENTS.md)"],
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
