"""Figure 17 — design space exploration of buffers and comparator arrays.

The paper sweeps four parameters around the Table I design point:

* (a) prefetch buffer *line size* (1024 lines × 24…96 elements) — longer
  lines reduce DRAM access with diminishing returns; 48 is chosen.
* (b) prefetch buffer *shape* at fixed capacity (2048×24 … 256×192) — more,
  shorter lines reduce DRAM access; 1024×48 is chosen.
* (c) comparator array size (1×1 … 16×16) — performance scales linearly
  while compute-bound, then saturates when memory-bound; 16×16 is chosen.
* (d) look-ahead FIFO size (1024 … 16384) — larger FIFOs improve the
  replacement decisions until the round-startup cost dominates; 8192 is
  chosen.
"""

from __future__ import annotations

from repro.core.config import SpArchConfig
from repro.corpus.registry import DSE_BENCHMARKS
from repro.experiments.common import ExperimentResult, default_suite
from repro.experiments.designspace import (
    fig17_grid,
    summarise_grid,
    sweep_grid,
)
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.utils.reporting import Table

#: Display row of each grid family, in the paper's presentation order
#: (metric keys use the family name itself).
_FAMILY_ROWS = {
    "line": "(a) line size",
    "shape": "(b) buffer shape",
    "comparator": "(c) comparator array",
    "lookahead": "(d) look-ahead FIFO",
}

PAPER_METRICS = {
    "chosen_line_elements": 48,
    "chosen_buffer_lines": 1024,
    "chosen_comparator_size": 16,
    "chosen_lookahead": 8192,
}


def _sweep(matrices: dict[str, CSRMatrix], configs: dict[str, SpArchConfig],
           runner: ExperimentRunner) -> dict[str, tuple[float, float]]:
    """Run every config over the matrices; return geomean GFLOPS and bytes.

    A thin view over :func:`repro.experiments.designspace.sweep_grid`:
    results come back keyed per ``(config, matrix)`` cell instead of being
    sliced out of one flat list by index arithmetic.
    """
    return summarise_grid(sweep_grid(configs, matrices, runner=runner))


def run(*, max_rows: int = 800, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        base_config: SpArchConfig | None = None,
        buffer_scale: int = 16,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce the four Figure 17 sweeps.

    Args:
        max_rows: proxy dimension cap.
        names: benchmark subset (a prefetcher-sensitive subset by default).
        matrices: explicit matrices to sweep instead of the generated suite.
        base_config: configuration the sweeps perturb (Table I by default).
        buffer_scale: the prefetch buffer and look-ahead FIFO sweeps are
            divided by this factor so the scaled-down proxies exercise the
            same capacity-pressure regime as the paper's full-size matrices
            (a 1024-line buffer would trivially hold every scaled proxy).
    """
    base_config = base_config or SpArchConfig()
    runner = runner or default_runner()
    if matrices is None:
        if names is None:
            # The same benchmark subset the registered fig17-dse corpus
            # sweep runs — one definition of the grid's matrix axis.
            names = list(DSE_BENCHMARKS)
        matrices = default_suite(max_rows=max_rows, names=names)

    table = Table(
        title="Figure 17 — design space exploration",
        columns=["sweep", "point", "GFLOP/s", "DRAM bytes"],
    )
    metrics: dict[str, float] = {}

    # The shared Figure 17 grid (designspace.fig17_grid) — the same labelled
    # configs the registered `fig17-dse` corpus sweep executes.
    grid = fig17_grid(base_config, buffer_scale=buffer_scale)
    for family, configs in grid.items():
        for label, (gflops, dram) in _sweep(matrices, configs,
                                            runner).items():
            table.add_row(_FAMILY_ROWS[family], label, gflops, dram)
            # Metric keys keep their historical, family-specific point
            # naming: line size by elements-per-line, comparator by width.
            if family == "line":
                point = label.split("x")[1]
            elif family == "comparator":
                point = label.split("x")[0]
            else:
                point = label
            metrics[f"gflops[{family}:{point}]"] = gflops
            if family != "comparator":
                metrics[f"dram[{family}:{point}]"] = dram

    return ExperimentResult(
        experiment_id="fig17",
        title="Design space exploration (Figure 17)",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_METRICS),
        notes=[f"buffer/FIFO capacities divided by {buffer_scale} to match the "
               f"scaled proxies' working sets (see EXPERIMENTS.md)"],
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
