"""Figure 14 — performance on synthetic rMAT matrices versus Intel MKL.

The paper sweeps rMAT matrices (dimension 5k–80k, average degree 4–32,
density 6×10⁻³ down to 5×10⁻⁵) and shows that SpArch not only exceeds 10×
MKL's throughput but also degrades far less as the matrices get sparser:
2.7× degradation from the densest to the sparsest configuration versus 5.9×
for MKL.
"""

from __future__ import annotations

from repro.baselines.gustavson import GustavsonSpGEMM
from repro.core.config import SpArchConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.matrices.rmat import RMATConfig, generate_rmat, rmat_benchmark_name
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table

#: The paper's rMAT sweep: (rows, edge factor), in Figure 14 order
#: (densest → sparsest).  The full-size sweep uses 5k–80k rows.
PAPER_SWEEP: tuple[tuple[int, int], ...] = (
    (5_000, 32), (5_000, 16), (10_000, 32), (5_000, 8), (10_000, 16),
    (20_000, 32), (5_000, 4), (10_000, 8), (20_000, 16), (40_000, 32),
    (10_000, 4), (20_000, 8), (40_000, 16), (20_000, 4), (40_000, 8),
    (80_000, 16), (40_000, 4), (80_000, 8), (80_000, 4),
)

#: Headline numbers of Figure 14.
PAPER_METRICS = {
    "geomean_flops[SpArch]": 7.54e9,
    "geomean_flops[MKL]": 5.68e8,
    "degradation[SpArch]": 2.7,
    "degradation[MKL]": 5.9,
}


def scaled_sweep(scale: float) -> list[tuple[int, int]]:
    """The Figure 14 sweep with every dimension scaled by ``scale``.

    The edge factors (average degrees) are preserved so the density trend —
    the x-axis of Figure 14 — is preserved; only the absolute dimension
    shrinks to keep the pure-Python simulation tractable.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    return [(max(256, int(rows * scale)), degree) for rows, degree in PAPER_SWEEP]


def run(*, scale: float = 0.1, seed: int = 7,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce the Figure 14 rMAT sweep at a configurable scale.

    The on-chip capacities that shape the density trend — MKL's last-level
    cache and SpArch's prefetch buffer / look-ahead FIFO — are scaled by the
    same factor as the matrices, so the capacity-pressure regime (and hence
    the relative degradation of the two systems) matches the full-size sweep.
    """
    sweep = scaled_sweep(scale)
    base_config = config or SpArchConfig()
    scaled_lines = max(32, int(round(base_config.prefetch_buffer_lines * scale)))
    scaled_lookahead = max(256, int(round(base_config.lookahead_fifo_elements
                                          * scale)))
    sparch_config = base_config.replace(
        prefetch_buffer_lines=scaled_lines,
        lookahead_fifo_elements=scaled_lookahead)
    mkl = GustavsonSpGEMM(cache_bytes=max(64 * 2**10, 15 * 2**20 * scale))

    table = Table(
        title="Figure 14 — FLOPS on rMAT benchmarks (SpArch vs MKL)",
        columns=["benchmark", "density", "MKL FLOPS", "SpArch FLOPS", "ratio"],
    )
    runner = runner or default_runner()
    generated = [generate_rmat(RMATConfig(num_rows=rows, edge_factor=degree,
                                          seed=seed))
                 for rows, degree in sweep]
    sparch_stats = runner.simulate_many(
        [(matrix, sparch_config) for matrix in generated])
    mkl_summaries = runner.run_baseline_many(
        [(mkl, matrix) for matrix in generated])
    sparch_flops: list[float] = []
    mkl_flops: list[float] = []
    for matrix, stats, mkl_result, (orig_rows, degree) in zip(
            generated, sparch_stats, mkl_summaries, PAPER_SWEEP):
        sparch_rate = stats.flops / max(stats.runtime_seconds, 1e-15)
        mkl_rate = mkl_result.flops / max(mkl_result.runtime_seconds, 1e-15)
        sparch_flops.append(sparch_rate)
        mkl_flops.append(mkl_rate)
        table.add_row(rmat_benchmark_name(orig_rows, degree), matrix.density,
                      mkl_rate, sparch_rate, sparch_rate / max(mkl_rate, 1e-9))
    table.add_row("Geo Mean", "-", geometric_mean(mkl_flops),
                  geometric_mean(sparch_flops),
                  geometric_mean(sparch_flops) / geometric_mean(mkl_flops))

    # Degradation: throughput of the densest configurations relative to the
    # sparsest ones (first vs last quarter of the Figure 14 ordering).
    quarter = max(1, len(sweep) // 4)
    degradation_sparch = (geometric_mean(sparch_flops[:quarter])
                          / geometric_mean(sparch_flops[-quarter:]))
    degradation_mkl = (geometric_mean(mkl_flops[:quarter])
                       / geometric_mean(mkl_flops[-quarter:]))

    metrics = {
        "geomean_flops[SpArch]": geometric_mean(sparch_flops),
        "geomean_flops[MKL]": geometric_mean(mkl_flops),
        "degradation[SpArch]": degradation_sparch,
        "degradation[MKL]": degradation_mkl,
        "geomean_speedup_over_mkl": (geometric_mean(sparch_flops)
                                     / geometric_mean(mkl_flops)),
    }
    return ExperimentResult(
        experiment_id="fig14",
        title="rMAT sweep vs Intel MKL (Figure 14)",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_METRICS),
        notes=[f"rMAT dimensions scaled by {scale:g} (degrees preserved)"],
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
