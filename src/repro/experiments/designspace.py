"""Reusable design-space sweep helper: keyed grids of engine points.

Figure 17 (and any future DSE experiment) evaluates a grid of architectural
configurations over a set of matrices.  The original harness flattened the
grid into one ``simulate_many`` list and sliced the results back out by
index arithmetic — correct only as long as every config ran every matrix in
exactly the constructed order.  :func:`sweep_grid` replaces that with keyed
results: every ``(config label, matrix name)`` cell of the grid maps to its
own :class:`~repro.metrics.report.CostReport`, while the batched runner
underneath still deduplicates and fans out exactly as before.

The aggregation helpers (:func:`geomean_gflops`, :func:`total_dram_bytes`,
:func:`summarise_grid`) compute the per-config numbers Figure 17 plots, and
are the building blocks future DSE harnesses should reach for instead of
re-deriving them.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.config import SpArchConfig
from repro.engines.sparch import SpArchEngine
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.metrics.report import CostReport
from repro.utils.maths import geometric_mean

#: Sweep points of the four Figure 17 design-space axes, matching the
#: paper's x-axes.  They live here (not in the fig17 harness) because the
#: same grid is re-expressed as the registered ``fig17-dse`` corpus sweep.
LINE_SIZE_SWEEP = (24, 36, 48, 60, 72, 84, 96)
BUFFER_SHAPE_SWEEP = ((2048, 24), (1024, 48), (512, 96), (256, 192))
COMPARATOR_SWEEP = (1, 2, 4, 8, 16)
LOOKAHEAD_SWEEP = (1024, 2048, 4096, 8192, 16384)


def fig17_grid(base_config: SpArchConfig | None = None, *,
               buffer_scale: int = 16
               ) -> dict[str, dict[str, SpArchConfig]]:
    """The Figure 17 design-space grid as labelled config families.

    Args:
        base_config: configuration the sweeps perturb (Table I by default).
        buffer_scale: prefetch-buffer and look-ahead capacities are divided
            by this factor so scaled-down proxies exercise the same
            capacity-pressure regime as the paper's full-size matrices.

    Returns:
        ``{family: {label: config}}`` with the four families ``"line"``
        (prefetch line size), ``"shape"`` (buffer shape at fixed capacity),
        ``"comparator"`` (merger array size) and ``"lookahead"`` (FIFO
        size) — consumed label-keyed by the fig17 harness and flattened
        into the ``fig17-dse`` sweep's config axis.
    """
    base_config = base_config or SpArchConfig()
    scaled_lines = max(4, base_config.prefetch_buffer_lines // buffer_scale)
    grid: dict[str, dict[str, SpArchConfig]] = {}
    grid["line"] = {
        f"{scaled_lines}x{line}": base_config.replace(
            prefetch_buffer_lines=scaled_lines,
            prefetch_line_elements=line)
        for line in LINE_SIZE_SWEEP
    }
    grid["shape"] = {
        f"{lines}x{elements}": base_config.replace(
            prefetch_buffer_lines=max(2, lines // buffer_scale),
            prefetch_line_elements=elements)
        for lines, elements in BUFFER_SHAPE_SWEEP
    }
    grid["comparator"] = {
        f"{size}x{size}": base_config.replace(
            merger_width=size, merger_chunk_size=min(4, size))
        for size in COMPARATOR_SWEEP
    }
    grid["lookahead"] = {
        str(size): base_config.replace(
            lookahead_fifo_elements=max(16, size // buffer_scale),
            prefetch_buffer_lines=scaled_lines)
        for size in LOOKAHEAD_SWEEP
    }
    return grid


def flatten_grid(grid: dict[str, dict[str, SpArchConfig]]
                 ) -> tuple[tuple[str, SpArchConfig], ...]:
    """Flatten a ``{family: {label: config}}`` grid into labelled configs.

    Labels become ``"family:label"`` — the form a
    :class:`~repro.sweeps.spec.SweepSpec` declares its config axis in
    (family prefixes keep labels unique across families).
    """
    return tuple((f"{family}:{label}", config)
                 for family, configs in grid.items()
                 for label, config in configs.items())


def sweep_grid(configs: dict[str, SpArchConfig],
               matrices: dict[str, CSRMatrix], *,
               runner: ExperimentRunner | None = None
               ) -> dict[str, dict[str, CostReport]]:
    """Simulate every config over every matrix, keyed per cell.

    Args:
        configs: ``{label: config}`` sweep points.
        matrices: ``{name: matrix}`` workload (each squared, as in the
            paper's evaluation).
        runner: experiment runner providing memoised/batched simulation.

    Returns:
        ``{config label: {matrix name: CostReport}}`` — every cell
        addressable by its keys, no positional arithmetic.  Duplicate
        points (configs that collapse to the same effective design, shared
        matrices) still simulate only once through the runner's fingerprint
        cache.
    """
    runner = runner or default_runner()
    cells = [(label, name) for label in configs for name in matrices]
    reports = runner.run_engine_many(
        [(SpArchEngine(configs[label]), matrices[name])
         for label, name in cells])
    grid: dict[str, dict[str, CostReport]] = {label: {} for label in configs}
    for (label, name), report in zip(cells, reports):
        grid[label][name] = report
    return grid


def geomean_gflops(reports: Iterable[CostReport], *,
                   floor: float = 1e-12) -> float:
    """Geometric-mean achieved GFLOP/s across reports (floored at 0+)."""
    return geometric_mean([max(report.gflops, floor) for report in reports])


def total_dram_bytes(reports: Iterable[CostReport]) -> int:
    """Total DRAM traffic summed across reports."""
    return sum(report.dram_bytes for report in reports)


def summarise_grid(grid: dict[str, dict[str, CostReport]]
                   ) -> dict[str, tuple[float, float]]:
    """Per-config ``(geomean GFLOP/s, total DRAM bytes)`` of a sweep grid.

    The two numbers Figure 17 plots per sweep point, in the grid's label
    order.
    """
    return {
        label: (geomean_gflops(cells.values()),
                float(total_dram_bytes(cells.values())))
        for label, cells in grid.items()
    }
