"""Reusable design-space sweep helper: keyed grids of engine points.

Figure 17 (and any future DSE experiment) evaluates a grid of architectural
configurations over a set of matrices.  The original harness flattened the
grid into one ``simulate_many`` list and sliced the results back out by
index arithmetic — correct only as long as every config ran every matrix in
exactly the constructed order.  :func:`sweep_grid` replaces that with keyed
results: every ``(config label, matrix name)`` cell of the grid maps to its
own :class:`~repro.metrics.report.CostReport`, while the batched runner
underneath still deduplicates and fans out exactly as before.

The aggregation helpers (:func:`geomean_gflops`, :func:`total_dram_bytes`,
:func:`summarise_grid`) compute the per-config numbers Figure 17 plots, and
are the building blocks future DSE harnesses should reach for instead of
re-deriving them.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.config import SpArchConfig
from repro.engines.sparch import SpArchEngine
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.metrics.report import CostReport
from repro.utils.maths import geometric_mean


def sweep_grid(configs: dict[str, SpArchConfig],
               matrices: dict[str, CSRMatrix], *,
               runner: ExperimentRunner | None = None
               ) -> dict[str, dict[str, CostReport]]:
    """Simulate every config over every matrix, keyed per cell.

    Args:
        configs: ``{label: config}`` sweep points.
        matrices: ``{name: matrix}`` workload (each squared, as in the
            paper's evaluation).
        runner: experiment runner providing memoised/batched simulation.

    Returns:
        ``{config label: {matrix name: CostReport}}`` — every cell
        addressable by its keys, no positional arithmetic.  Duplicate
        points (configs that collapse to the same effective design, shared
        matrices) still simulate only once through the runner's fingerprint
        cache.
    """
    runner = runner or default_runner()
    cells = [(label, name) for label in configs for name in matrices]
    reports = runner.run_engine_many(
        [(SpArchEngine(configs[label]), matrices[name])
         for label, name in cells])
    grid: dict[str, dict[str, CostReport]] = {label: {} for label in configs}
    for (label, name), report in zip(cells, reports):
        grid[label][name] = report
    return grid


def geomean_gflops(reports: Iterable[CostReport], *,
                   floor: float = 1e-12) -> float:
    """Geometric-mean achieved GFLOP/s across reports (floored at 0+)."""
    return geometric_mean([max(report.gflops, floor) for report in reports])


def total_dram_bytes(reports: Iterable[CostReport]) -> int:
    """Total DRAM traffic summed across reports."""
    return sum(report.dram_bytes for report in reports)


def summarise_grid(grid: dict[str, dict[str, CostReport]]
                   ) -> dict[str, tuple[float, float]]:
    """Per-config ``(geomean GFLOP/s, total DRAM bytes)`` of a sweep grid.

    The two numbers Figure 17 plots per sweep point, in the grid's label
    order.
    """
    return {
        label: (geomean_gflops(cells.values()),
                float(total_dram_bytes(cells.values())))
        for label, cells in grid.items()
    }
