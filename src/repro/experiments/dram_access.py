"""Headline DRAM-access comparison: SpArch moves 2.8× fewer bytes.

The abstract's headline claim is a 2.8× reduction in total DRAM access over
OuterSPACE on the 20-benchmark suite.  This harness measures the simulated
byte counts of both accelerators on the (scaled) suite and reports the
per-matrix and geometric-mean reduction, split by traffic category.
"""

from __future__ import annotations

from repro.baselines.outerspace import OuterSpaceAccelerator
from repro.core.config import SpArchConfig
from repro.experiments.common import (
    ExperimentResult,
    load_scaled_suite,
    simulate_workload,
)
from repro.experiments.runner import ExperimentRunner
from repro.formats.csr import CSRMatrix
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table

PAPER_METRICS = {
    "geomean_dram_reduction": 2.8,
}


def run(*, max_rows: int = 1000, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Measure the DRAM-access reduction of SpArch over OuterSPACE."""
    config = config or SpArchConfig()
    if matrices is not None:
        workload = {name: (matrix, config) for name, matrix in matrices.items()}
    else:
        workload = load_scaled_suite(max_rows=max_rows, names=names,
                                     base_config=config)
    outerspace = OuterSpaceAccelerator()

    table = Table(
        title="Total DRAM access: SpArch vs OuterSPACE",
        columns=["matrix", "SpArch bytes", "OuterSPACE bytes", "reduction",
                 "SpArch partial bytes", "SpArch input bytes"],
    )
    reductions: list[float] = []
    sparch_stats = simulate_workload(workload, runner=runner)
    for name, (matrix, matrix_config) in workload.items():
        stats = sparch_stats[name]
        outer_result = outerspace.multiply(matrix, matrix)
        sparch_bytes = stats.dram_bytes
        reduction = outer_result.traffic_bytes / max(1, sparch_bytes)
        reductions.append(reduction)
        table.add_row(name, sparch_bytes, outer_result.traffic_bytes, reduction,
                      stats.traffic.partial_matrix_bytes,
                      stats.traffic.input_bytes)
    geomean = geometric_mean(reductions)
    table.add_row("Geo Mean", "-", "-", geomean, "-", "-")

    return ExperimentResult(
        experiment_id="dram",
        title="DRAM access reduction over OuterSPACE (headline)",
        table=table,
        metrics={"geomean_dram_reduction": geomean},
        paper_values=dict(PAPER_METRICS),
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
