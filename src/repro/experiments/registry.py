"""Registry mapping experiment ids to their harness modules."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.experiments import (
    condensing_stats,
    dram_access,
    fig08_huffman,
    fig11_speedup,
    fig12_energy,
    fig13_breakdown,
    fig14_rmat,
    fig15_roofline,
    fig16_breakdown,
    fig17_dse,
    fig18_merge_tree,
    scheduler_ablation,
    sweep,
    table2_comparison,
    table3_energy,
    workloads_e2e,
)
from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment.

    Attributes:
        experiment_id: short id used on the command line ("fig11", "table2").
        title: the paper artefact the experiment regenerates.
        run: the harness entry point (keyword arguments forwarded verbatim).
    """

    experiment_id: str
    title: str
    run: Callable[..., ExperimentResult]


#: Every experiment, in the order the paper presents its evaluation.
EXPERIMENTS: tuple[ExperimentEntry, ...] = (
    ExperimentEntry("fig08", "Huffman tree scheduler example (Figure 8)",
                    fig08_huffman.run),
    ExperimentEntry("table2", "Area/power/bandwidth vs OuterSPACE (Table II)",
                    table2_comparison.run),
    ExperimentEntry("table3", "Energy and area breakdown (Table III)",
                    table3_energy.run),
    ExperimentEntry("fig11", "Speedup over five baselines (Figure 11)",
                    fig11_speedup.run),
    ExperimentEntry("fig12", "Energy saving over five baselines (Figure 12)",
                    fig12_energy.run),
    ExperimentEntry("fig13", "Area and power breakdown (Figure 13)",
                    fig13_breakdown.run),
    ExperimentEntry("fig14", "rMAT sweep vs MKL (Figure 14)", fig14_rmat.run),
    ExperimentEntry("fig15", "Roofline model (Figure 15)", fig15_roofline.run),
    ExperimentEntry("fig16", "Performance breakdown (Figures 2 and 16)",
                    fig16_breakdown.run),
    ExperimentEntry("fig17", "Buffer / comparator DSE (Figure 17)",
                    fig17_dse.run),
    ExperimentEntry("fig18", "Merge tree depth DSE (Figure 18)",
                    fig18_merge_tree.run),
    ExperimentEntry("dram", "DRAM access reduction headline (abstract)",
                    dram_access.run),
    ExperimentEntry("condense", "Matrix condensing / prefetcher ablation (§II-B, §II-D)",
                    condensing_stats.run),
    ExperimentEntry("scheduler", "Huffman vs sequential scheduler ablation (§II-C)",
                    scheduler_ablation.run),
    ExperimentEntry("workloads", "End-to-end workload pipelines vs baselines "
                    "(repro.workloads registry)",
                    workloads_e2e.run),
    ExperimentEntry("sweep", "Corpus sweep via the sharded result-store "
                    "driver (repro.sweeps registry; fig17-dse by default)",
                    sweep.run),
)

_BY_ID = {entry.experiment_id: entry for entry in EXPERIMENTS}


def list_experiments() -> list[str]:
    """Return the registered experiment ids in evaluation order."""
    return [entry.experiment_id for entry in EXPERIMENTS]


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up one experiment by id; raises ``KeyError`` with suggestions."""
    try:
        return _BY_ID[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{', '.join(list_experiments())}"
        ) from None
