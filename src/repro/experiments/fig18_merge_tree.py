"""Figure 18 — design space exploration of the merge tree depth.

The paper sweeps the merge tree from 2 to 7 layers (4-way to 128-way).  A
deeper tree merges more partial matrices per round, cutting the DRAM traffic
of partially merged results, but beyond 6 layers (64-way) the improvement
vanishes because the condensed column count of the benchmark matrices is
already comparable to the tree's width.
"""

from __future__ import annotations

from repro.core.config import SpArchConfig
from repro.experiments.common import ExperimentResult, default_suite
from repro.experiments.runner import ExperimentRunner, default_runner
from repro.formats.csr import CSRMatrix
from repro.utils.maths import geometric_mean
from repro.utils.reporting import Table

#: Layer counts swept by Figure 18.
LAYER_SWEEP = (2, 3, 4, 5, 6, 7)

PAPER_METRICS = {
    "chosen_layers": 6,
    "gflops_at_6_layers": 10.45,
    "gflops_at_2_layers": 4.13,
}


def run(*, max_rows: int = 1500, names: list[str] | None = None,
        matrices: dict[str, CSRMatrix] | None = None,
        base_config: SpArchConfig | None = None,
        runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Reproduce the Figure 18 merge-tree-depth sweep."""
    base_config = base_config or SpArchConfig()
    runner = runner or default_runner()
    if matrices is None:
        if names is None:
            names = ["wiki-Vote", "facebook", "email-Enron", "ca-CondMat",
                     "poisson3Da", "2cubes_sphere"]
        matrices = default_suite(max_rows=max_rows, names=names)

    table = Table(
        title="Figure 18 — merge tree depth sweep",
        columns=["layers", "ways", "GFLOP/s", "DRAM bytes"],
    )
    metrics: dict[str, float] = {}
    for layers in LAYER_SWEEP:
        config = base_config.replace(merge_tree_layers=layers)
        layer_stats = runner.simulate_many(
            [(matrix, config) for matrix in matrices.values()])
        gflops = [max(stats.gflops, 1e-12) for stats in layer_stats]
        total_bytes = sum(stats.dram_bytes for stats in layer_stats)
        mean_gflops = geometric_mean(gflops)
        table.add_row(layers, 2 ** layers, mean_gflops, total_bytes)
        metrics[f"gflops[layers:{layers}]"] = mean_gflops
        metrics[f"dram[layers:{layers}]"] = float(total_bytes)

    return ExperimentResult(
        experiment_id="fig18",
        title="Merge tree size exploration (Figure 18)",
        table=table,
        metrics=metrics,
        paper_values=dict(PAPER_METRICS),
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
