"""Roofline analysis (Figure 15).

The roofline model bounds achievable performance by
``min(peak compute, operational intensity × memory bandwidth)``.  The paper
computes the *theoretical* operational intensity of the outer product on its
dataset — useful FLOPs divided by the compulsory traffic (both inputs plus
the final result) — as 0.19 FLOP/byte, giving a 23.9 GFLOP/s roof under the
128 GB/s HBM; SpArch achieves 10.4 GFLOP/s against OuterSPACE's 2.5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.formats.csr import CSRMatrix

#: Operational intensity the paper reports for its dataset (FLOP/byte).
PAPER_OPERATIONAL_INTENSITY = 0.19

#: Achieved throughput the paper reports (GFLOP/s).
PAPER_SPARCH_GFLOPS = 10.4
PAPER_OUTERSPACE_GFLOPS = 2.5


@dataclass(frozen=True)
class RooflinePoint:
    """One point under the roofline.

    Attributes:
        name: label of the design point ("SpArch", "OuterSPACE", ...).
        operational_intensity: useful FLOPs per byte of compulsory traffic.
        achieved_gflops: simulated or reported throughput.
        compute_roof_gflops: peak arithmetic throughput of the machine.
        bandwidth_roof_gflops: ``operational_intensity × peak bandwidth``.
    """

    name: str
    operational_intensity: float
    achieved_gflops: float
    compute_roof_gflops: float
    bandwidth_roof_gflops: float

    @property
    def roof_gflops(self) -> float:
        """The binding roof at this operational intensity."""
        return min(self.compute_roof_gflops, self.bandwidth_roof_gflops)

    @property
    def roof_fraction(self) -> float:
        """Fraction of the binding roof actually achieved."""
        roof = self.roof_gflops
        return self.achieved_gflops / roof if roof > 0 else 0.0


def compulsory_traffic_bytes_from_counts(nnz_a: int, nnz_b: int, nnz_out: int,
                                         *, element_bytes: int = 16) -> int:
    """Minimum DRAM traffic of any SpGEMM dataflow, from nonzero counts.

    This count-based form lets callers work from cached simulation
    statistics (which record ``output_nnz``) without the result matrix.
    """
    return (nnz_a + nnz_b + nnz_out) * element_bytes


def compulsory_traffic_bytes(matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                             result: CSRMatrix, *, element_bytes: int = 16) -> int:
    """Minimum DRAM traffic of any SpGEMM dataflow: read inputs, write output."""
    return compulsory_traffic_bytes_from_counts(matrix_a.nnz, matrix_b.nnz,
                                                result.nnz,
                                                element_bytes=element_bytes)


def theoretical_operational_intensity(matrix_a: CSRMatrix, matrix_b: CSRMatrix,
                                      result: CSRMatrix, flops: int, *,
                                      element_bytes: int = 16) -> float:
    """Useful FLOPs per compulsory byte — the x-axis position of Figure 15."""
    traffic = compulsory_traffic_bytes(matrix_a, matrix_b, result,
                                       element_bytes=element_bytes)
    if traffic == 0:
        return 0.0
    return flops / traffic


def roofline_analysis(stats: SimulationStats, *, name: str = "SpArch",
                      config: SpArchConfig | None = None,
                      operational_intensity: float | None = None
                      ) -> RooflinePoint:
    """Place one simulated execution under the SpArch roofline.

    Args:
        stats: simulation statistics of the execution.
        name: label for the point.
        config: architectural configuration (Table I by default), which
            defines the compute roof and the peak bandwidth.
        operational_intensity: override for the x-axis position; defaults to
            the theoretical intensity implied by the simulated compulsory
            traffic (``stats.flops`` over input+output bytes) when available,
            falling back to the achieved intensity.
    """
    config = config or SpArchConfig()
    peak_bandwidth = config.hbm.total_bandwidth_bytes_per_second
    compute_roof = config.peak_flops / 1e9
    intensity = operational_intensity
    if intensity is None:
        intensity = stats.operational_intensity
    bandwidth_roof = intensity * peak_bandwidth / 1e9
    return RooflinePoint(
        name=name,
        operational_intensity=intensity,
        achieved_gflops=stats.gflops,
        compute_roof_gflops=compute_roof,
        bandwidth_roof_gflops=bandwidth_roof,
    )
