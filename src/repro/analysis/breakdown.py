"""Cumulative-technique performance breakdown (Figure 2 / Figure 16).

The paper dissects its speedup by adding the four techniques one at a time,
starting from the OuterSPACE baseline:

1. pipelined multiply and merge *only* (CSC/CSR formats, random order, no
   prefetcher) — 5.7× **slower** than OuterSPACE because the partially
   merged results of ~140,000 partial matrices thrash DRAM;
2. + matrix condensing — 8.8× speedup over the previous step;
3. + Huffman tree scheduler — 1.5× further;
4. + row prefetcher — 1.8× further, for ≈ 4.2× over OuterSPACE overall.

:func:`cumulative_breakdown` replays that walk on a set of matrices using
the ablation switches of :class:`~repro.core.config.SpArchConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.outerspace import OuterSpaceAccelerator
from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.engines.adapters import BaselineEngineAdapter
from repro.formats.csr import CSRMatrix
from repro.metrics.report import CostReport
from repro.utils.maths import geometric_mean


@dataclass(frozen=True)
class BreakdownStep:
    """One bar of Figure 16.

    Attributes:
        name: label of the configuration step.
        gflops: geometric-mean achieved GFLOP/s across the matrices.
        dram_bytes: total DRAM traffic summed across the matrices.
        speedup_vs_previous: ratio of this step's throughput to the previous
            step's (the annotations along Figure 2).
        speedup_vs_outerspace: ratio to the OuterSPACE baseline.
    """

    name: str
    gflops: float
    dram_bytes: int
    speedup_vs_previous: float
    speedup_vs_outerspace: float


#: The cumulative feature walk of Figure 16, in order.
BREAKDOWN_STEPS: tuple[tuple[str, dict[str, bool]], ...] = (
    ("Pipelined Multiply and Merge",
     dict(pipelined_merge=True, matrix_condensing=False,
          huffman_scheduler=False, row_prefetcher=False)),
    ("+ Matrix Condensing",
     dict(pipelined_merge=True, matrix_condensing=True,
          huffman_scheduler=False, row_prefetcher=False)),
    ("+ Huffman Tree Scheduler",
     dict(pipelined_merge=True, matrix_condensing=True,
          huffman_scheduler=True, row_prefetcher=False)),
    ("+ Row Prefetcher",
     dict(pipelined_merge=True, matrix_condensing=True,
          huffman_scheduler=True, row_prefetcher=True)),
)


def cumulative_breakdown(matrices: dict[str, CSRMatrix], *,
                         base_config: SpArchConfig | None = None,
                         simulate=None) -> list[BreakdownStep]:
    """Replay the Figure 16 feature walk over ``matrices`` (each squared).

    Args:
        matrices: named left operands; each is multiplied by itself, as in
            the paper's evaluation.
        base_config: configuration whose non-ablation parameters (merger
            width, buffer sizes, ...) are used for every step.
        simulate: optional ``(matrix, config) -> SimulationStats`` callable;
            defaults to a fresh (uncached) SpArch run per point.  The
            experiment harness passes a memoising runner here.

    Returns:
        One :class:`BreakdownStep` for the OuterSPACE baseline followed by
        one per cumulative technique, in Figure 16 order.
    """
    if not matrices:
        raise ValueError("cumulative_breakdown() requires at least one matrix")
    base_config = base_config or SpArchConfig()
    if simulate is None:
        def simulate(matrix: CSRMatrix, config: SpArchConfig) -> SimulationStats:
            return SpArch(config).multiply(matrix, matrix).stats

    steps: list[BreakdownStep] = []

    # Every step — the OuterSPACE baseline included — reduces to a list of
    # canonical CostReports; the bar heights are one derived-metric view.
    outerspace = BaselineEngineAdapter(OuterSpaceAccelerator())
    outerspace_reports = [outerspace.run(matrix).report
                          for matrix in matrices.values()]
    steps.append(_step_from_reports("OuterSPACE baseline", outerspace_reports,
                                    previous_gflops=None,
                                    baseline_gflops=None))
    baseline_gflops = steps[0].gflops

    previous_gflops = baseline_gflops
    for name, features in BREAKDOWN_STEPS:
        config = base_config.with_features(**features)
        reports = [CostReport.from_stats(simulate(matrix, config),
                                         config=config)
                   for matrix in matrices.values()]
        step = _step_from_reports(name, reports,
                                  previous_gflops=previous_gflops,
                                  baseline_gflops=baseline_gflops)
        steps.append(step)
        previous_gflops = step.gflops
    return steps


def _step_from_reports(name: str, reports: list[CostReport], *,
                       previous_gflops: float | None,
                       baseline_gflops: float | None) -> BreakdownStep:
    """One Figure 16 bar from the step's cost reports."""
    gflops = geometric_mean([max(report.gflops, 1e-12) for report in reports])
    return BreakdownStep(
        name=name,
        gflops=gflops,
        dram_bytes=sum(report.dram_bytes for report in reports),
        speedup_vs_previous=(gflops / previous_gflops
                             if previous_gflops else 1.0),
        speedup_vs_outerspace=(gflops / baseline_gflops
                               if baseline_gflops else 1.0),
    )
