"""Cumulative-technique performance breakdown (Figure 2 / Figure 16).

The paper dissects its speedup by adding the four techniques one at a time,
starting from the OuterSPACE baseline:

1. pipelined multiply and merge *only* (CSC/CSR formats, random order, no
   prefetcher) — 5.7× **slower** than OuterSPACE because the partially
   merged results of ~140,000 partial matrices thrash DRAM;
2. + matrix condensing — 8.8× speedup over the previous step;
3. + Huffman tree scheduler — 1.5× further;
4. + row prefetcher — 1.8× further, for ≈ 4.2× over OuterSPACE overall.

:func:`cumulative_breakdown` replays that walk on a set of matrices using
the ablation switches of :class:`~repro.core.config.SpArchConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.outerspace import OuterSpaceAccelerator
from repro.core.accelerator import SpArch
from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.formats.csr import CSRMatrix
from repro.utils.maths import geometric_mean


@dataclass(frozen=True)
class BreakdownStep:
    """One bar of Figure 16.

    Attributes:
        name: label of the configuration step.
        gflops: geometric-mean achieved GFLOP/s across the matrices.
        dram_bytes: total DRAM traffic summed across the matrices.
        speedup_vs_previous: ratio of this step's throughput to the previous
            step's (the annotations along Figure 2).
        speedup_vs_outerspace: ratio to the OuterSPACE baseline.
    """

    name: str
    gflops: float
    dram_bytes: int
    speedup_vs_previous: float
    speedup_vs_outerspace: float


#: The cumulative feature walk of Figure 16, in order.
BREAKDOWN_STEPS: tuple[tuple[str, dict[str, bool]], ...] = (
    ("Pipelined Multiply and Merge",
     dict(pipelined_merge=True, matrix_condensing=False,
          huffman_scheduler=False, row_prefetcher=False)),
    ("+ Matrix Condensing",
     dict(pipelined_merge=True, matrix_condensing=True,
          huffman_scheduler=False, row_prefetcher=False)),
    ("+ Huffman Tree Scheduler",
     dict(pipelined_merge=True, matrix_condensing=True,
          huffman_scheduler=True, row_prefetcher=False)),
    ("+ Row Prefetcher",
     dict(pipelined_merge=True, matrix_condensing=True,
          huffman_scheduler=True, row_prefetcher=True)),
)


def cumulative_breakdown(matrices: dict[str, CSRMatrix], *,
                         base_config: SpArchConfig | None = None,
                         simulate=None) -> list[BreakdownStep]:
    """Replay the Figure 16 feature walk over ``matrices`` (each squared).

    Args:
        matrices: named left operands; each is multiplied by itself, as in
            the paper's evaluation.
        base_config: configuration whose non-ablation parameters (merger
            width, buffer sizes, ...) are used for every step.
        simulate: optional ``(matrix, config) -> SimulationStats`` callable;
            defaults to a fresh (uncached) SpArch run per point.  The
            experiment harness passes a memoising runner here.

    Returns:
        One :class:`BreakdownStep` for the OuterSPACE baseline followed by
        one per cumulative technique, in Figure 16 order.
    """
    if not matrices:
        raise ValueError("cumulative_breakdown() requires at least one matrix")
    base_config = base_config or SpArchConfig()
    if simulate is None:
        def simulate(matrix: CSRMatrix, config: SpArchConfig) -> SimulationStats:
            return SpArch(config).multiply(matrix, matrix).stats

    steps: list[BreakdownStep] = []

    outerspace = OuterSpaceAccelerator()
    outerspace_gflops = []
    outerspace_bytes = 0
    for matrix in matrices.values():
        result = outerspace.multiply(matrix, matrix)
        outerspace_gflops.append(max(result.gflops, 1e-12))
        outerspace_bytes += result.traffic_bytes
    baseline_gflops = geometric_mean(outerspace_gflops)
    steps.append(BreakdownStep(
        name="OuterSPACE baseline",
        gflops=baseline_gflops,
        dram_bytes=outerspace_bytes,
        speedup_vs_previous=1.0,
        speedup_vs_outerspace=1.0,
    ))

    previous_gflops = baseline_gflops
    for name, features in BREAKDOWN_STEPS:
        config = base_config.with_features(**features)
        per_matrix = []
        total_bytes = 0
        for matrix in matrices.values():
            stats = simulate(matrix, config)
            per_matrix.append(max(stats.gflops, 1e-12))
            total_bytes += stats.dram_bytes
        gflops = geometric_mean(per_matrix)
        steps.append(BreakdownStep(
            name=name,
            gflops=gflops,
            dram_bytes=total_bytes,
            speedup_vs_previous=gflops / previous_gflops,
            speedup_vs_outerspace=gflops / baseline_gflops,
        ))
        previous_gflops = gflops
    return steps
