"""Analytical models layered on top of the simulator.

* :mod:`repro.analysis.energy` — per-event energy/power model (Table III,
  Figure 13b).
* :mod:`repro.analysis.area` — per-module area model (Table II, Figure 13a).
* :mod:`repro.analysis.roofline` — roofline analysis (Figure 15).
* :mod:`repro.analysis.dram_traffic` — the closed-form DRAM traffic analysis
  of §III-C (Equations 2–7).
* :mod:`repro.analysis.breakdown` — cumulative-technique performance
  breakdown (Figure 2 / Figure 16).
"""

from repro.analysis.area import AreaBreakdown, AreaModel
from repro.analysis.breakdown import BreakdownStep, cumulative_breakdown
from repro.analysis.dram_traffic import (
    condensed_traffic_elements,
    expected_partial_reads,
    outerspace_traffic_elements,
    uncondensed_traffic_elements,
)
from repro.analysis.energy import EnergyBreakdown, EnergyModel
from repro.analysis.roofline import RooflinePoint, roofline_analysis

__all__ = [
    "AreaModel",
    "AreaBreakdown",
    "EnergyModel",
    "EnergyBreakdown",
    "RooflinePoint",
    "roofline_analysis",
    "expected_partial_reads",
    "outerspace_traffic_elements",
    "uncondensed_traffic_elements",
    "condensed_traffic_elements",
    "BreakdownStep",
    "cumulative_breakdown",
]
