"""Closed-form DRAM traffic analysis of §III-C (Equations 2–7).

The paper derives, analytically, how much DRAM traffic each configuration
moves, in units of *M* (the number of scalar multiplications):

* OuterSPACE: every multiplied result is written and read once plus the
  final result, roughly ``2.5 M`` elements (§III-C).
* Pipelined multiply/merge *without* condensing: with ``N ≈ 140,000``
  columns and a 64-way merge tree, every multiplied element takes part in
  about ``ln(N/(w-1)) ≈ 6.7`` partially-merged round trips, giving
  ``≈ 13.9 M`` — the 5.7× slowdown of Figure 2/16.
* With matrix condensing the column count drops to ``≈ 100`` so merging
  finishes in ~2 rounds: ``≈ 1.5 M`` of partial traffic plus the right
  matrix (read once per multiplication), ``≈ 2.5 M`` total.
* The Huffman scheduler removes most partially merged traffic; the row
  prefetcher removes ~62 % of the right-matrix re-reads.

These formulas are used by the tests to check that the *simulated* traffic
trends agree with the paper's own analysis, and by the experiments to
annotate their outputs.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive_int


def merge_rounds(num_columns: int, ways: int) -> int:
    """Number of merge rounds needed to combine ``num_columns`` arrays.

    A ``ways``-way merger reduces the outstanding array count by
    ``ways - 1`` per round (the merged result stays outstanding), so
    ``t = ceil((N - 1) / (w - 1))`` rounds are needed — the ``t`` of
    Equation 2.
    """
    check_positive_int(ways, "ways")
    if ways < 2:
        raise ValueError("ways must be at least 2")
    if num_columns <= 1:
        return 0
    return math.ceil((num_columns - 1) / (ways - 1))


def expected_partial_reads(num_columns: int, ways: int, *,
                           exact: bool = False) -> float:
    """Expected DRAM round trips of one multiplied element (Equations 2–7).

    Under a random (un-scheduled) merge order, a multiplied element is
    re-read in round ``k`` with probability ``w / (N - k(w-1))``; summing
    over all rounds and approximating the harmonic sum with a logarithm
    gives Equation 7::

        E ≈ w/(w-1) · ln t,   t = (N-1)/(w-1)

    Args:
        num_columns: number of partial matrices to merge (*N*).
        ways: merger parallelism (*w*, 64 for SpArch).
        exact: evaluate the exact harmonic sum of Equation 5 instead of the
            logarithmic approximation of Equation 7.

    Returns:
        Expected number of times each multiplied element is read back from
        DRAM during merging.
    """
    check_positive_int(ways, "ways")
    if ways < 2:
        raise ValueError("ways must be at least 2")
    if num_columns <= ways:
        return 0.0
    t = (num_columns - 1) / (ways - 1)
    scale = ways / (ways - 1)
    if not exact:
        return scale * math.log(t)
    rounds = int(t)
    total = sum(1.0 / (1.0 / (ways - 1) + i) for i in range(1, rounds + 1))
    return scale * total


def outerspace_traffic_elements(multiplications: int, *,
                                output_fraction: float = 0.5) -> float:
    """OuterSPACE partial + output traffic in elements: ``≈ 2.5 M``.

    The multiply phase writes ``M`` intermediate elements, the merge phase
    reads them back (``M``), and the final result of roughly ``0.5 M``
    elements is written once (§III-C).
    """
    if multiplications < 0:
        raise ValueError("multiplications must be non-negative")
    return (2.0 + output_fraction) * multiplications


def uncondensed_traffic_elements(multiplications: int, num_columns: int,
                                 ways: int, *, output_fraction: float = 0.5
                                 ) -> float:
    """Partial-result traffic of pipelined merge *without* condensing.

    Every multiplied element is read and written ``E - 1`` times (the first
    round's results come straight from the multipliers), where ``E`` is
    :func:`expected_partial_reads`; the final output adds ``0.5 M``.
    For the paper's average ``N ≈ 140,000`` and ``w = 64`` this evaluates to
    ``≈ 13.9 M`` — the 5.7× regression of Figure 16.
    """
    reads = expected_partial_reads(num_columns, ways)
    round_trips = max(0.0, reads - 1.0)
    return 2.0 * round_trips * multiplications + output_fraction * multiplications


def condensed_traffic_elements(multiplications: int, num_condensed_columns: int,
                               ways: int, *, output_fraction: float = 0.5
                               ) -> float:
    """Traffic after matrix condensing: right-matrix reads + partial results.

    With condensing the left matrix loses its column structure, so the right
    matrix is read once per multiplication (``M`` elements); the partially
    merged results add ``(E − 1)·2M`` with the now-small column count, and
    the output adds ``0.5 M``.  For ``N ≈ 100`` condensed columns this is
    the paper's ``≈ 2.5 M``.
    """
    reads = expected_partial_reads(num_condensed_columns, ways)
    partial = 2.0 * max(0.0, reads - 1.0) * multiplications
    if num_condensed_columns > ways:
        # At least one extra round exists; the paper charges half a round
        # trip ((1 + 1/2) - 1 = 1/2 of the elements spill on average).
        partial = max(partial, 1.0 * multiplications)
    return multiplications + partial + output_fraction * multiplications
