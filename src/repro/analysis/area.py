"""Per-module area model (Table II, Figure 13a).

The paper synthesises its comparator arrays in TSMC 40 nm and sizes the
SRAMs with CACTI, reporting 28.49 mm² total with the merge tree taking
60.6 %.  The model below scales each module's area with the structural
quantity that drives it (comparator count, SRAM capacity, multiplier count),
with per-unit constants calibrated so that the Table I configuration
reproduces the paper's published per-module numbers exactly.  This makes the
design-space-exploration experiments (Figures 17/18) produce meaningful area
trade-offs when the merger or buffer sizes change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SpArchConfig
from repro.hardware.hierarchical_merger import comparator_count

#: Published per-module areas of the Table I configuration (mm², 40 nm).
PAPER_AREA_MM2 = {
    "Column Fetcher": 2.64,
    "Row Prefetcher": 5.80,
    "Multiplier Array": 0.45,
    "Merge Tree": 17.27,
    "Partial Mat Writer": 2.34,
}

#: Published totals for the comparison of Table II.
SPARCH_TOTAL_AREA_MM2 = 28.49
OUTERSPACE_TOTAL_AREA_MM2 = 87.0


@dataclass
class AreaBreakdown:
    """Area (mm²) per module for one configuration."""

    column_fetcher: float
    row_prefetcher: float
    multiplier_array: float
    merge_tree: float
    partial_matrix_writer: float

    @property
    def total(self) -> float:
        """Total accelerator area in mm²."""
        return (self.column_fetcher + self.row_prefetcher + self.multiplier_array
                + self.merge_tree + self.partial_matrix_writer)

    def by_module(self) -> dict[str, float]:
        """Return ``{module name: mm²}`` in Figure 13 order."""
        return {
            "Column Fetcher": self.column_fetcher,
            "Row Prefetcher": self.row_prefetcher,
            "Multiplier Array": self.multiplier_array,
            "Merge Tree": self.merge_tree,
            "Partial Mat Writer": self.partial_matrix_writer,
        }

    def fractions(self) -> dict[str, float]:
        """Return each module's share of the total area."""
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in self.by_module()}
        return {name: value / total for name, value in self.by_module().items()}


class AreaModel:
    """Scales module areas with the configuration's structural parameters.

    The reference point is the Table I configuration, whose module areas are
    pinned to the paper's published values; other configurations scale
    linearly in the quantity that dominates each module (comparators and
    FIFO capacity for the merge tree, SRAM bytes for the buffers, multiplier
    count for the arithmetic).
    """

    #: Fraction of the merge-tree area attributed to comparator logic; the
    #: remainder is the per-node FIFOs (SRAM).
    MERGE_TREE_COMPARATOR_FRACTION = 0.6

    def __init__(self, reference: SpArchConfig | None = None) -> None:
        self._reference = reference or SpArchConfig()

    # ------------------------------------------------------------------
    def breakdown(self, config: SpArchConfig | None = None) -> AreaBreakdown:
        """Return the per-module area of ``config`` (Table I by default)."""
        config = config or SpArchConfig()
        reference = self._reference

        fetcher = PAPER_AREA_MM2["Column Fetcher"] * self._ratio(
            config.lookahead_fifo_elements, reference.lookahead_fifo_elements)
        prefetcher = PAPER_AREA_MM2["Row Prefetcher"] * self._ratio(
            config.prefetch_buffer_bytes, reference.prefetch_buffer_bytes)
        multipliers = PAPER_AREA_MM2["Multiplier Array"] * self._ratio(
            config.num_multipliers, reference.num_multipliers)
        merge_tree = self._merge_tree_area(config, reference)
        writer = PAPER_AREA_MM2["Partial Mat Writer"] * self._ratio(
            config.partial_matrix_writer_fifo, reference.partial_matrix_writer_fifo)
        return AreaBreakdown(
            column_fetcher=fetcher,
            row_prefetcher=prefetcher,
            multiplier_array=multipliers,
            merge_tree=merge_tree,
            partial_matrix_writer=writer,
        )

    def total_area(self, config: SpArchConfig | None = None) -> float:
        """Total area (mm²) of ``config``."""
        return self.breakdown(config).total

    # ------------------------------------------------------------------
    def _merge_tree_area(self, config: SpArchConfig,
                         reference: SpArchConfig) -> float:
        paper = PAPER_AREA_MM2["Merge Tree"]
        comparator_part = paper * self.MERGE_TREE_COMPARATOR_FRACTION
        fifo_part = paper - comparator_part

        ref_comparators = reference.merge_tree_layers * comparator_count(
            reference.merger_width, reference.merger_chunk_size)
        cfg_comparators = config.merge_tree_layers * comparator_count(
            config.merger_width, config.merger_chunk_size)
        # One FIFO per tree node; capacity scales with the writer FIFO depth.
        ref_fifos = 2 ** (reference.merge_tree_layers + 1) - 1
        cfg_fifos = 2 ** (config.merge_tree_layers + 1) - 1

        return (comparator_part * self._ratio(cfg_comparators, ref_comparators)
                + fifo_part * self._ratio(cfg_fifos, ref_fifos))

    @staticmethod
    def _ratio(value: float, reference: float) -> float:
        if reference <= 0:
            raise ValueError("reference quantity must be positive")
        return value / reference
