"""Per-event energy and power model (Table III, Figure 13b).

The paper measures power by synthesising the comparator arrays in a TSMC
40 nm library, using published floating-point-unit numbers for the
arithmetic, CACTI for the SRAMs, and the JEDEC HBM2 figure of 42.6 GB/s/W
for DRAM.  We reproduce the same *structure* with a per-event energy model:
every simulated event (multiplication, addition, comparator operation, SRAM
element access, DRAM byte) is charged a fixed energy, and the per-module
sums give the Figure 13b breakdown.  The constants are 40 nm-class numbers
calibrated so that the Table I configuration lands at the paper's reported
operating point (≈ 0.89 nJ per useful FLOP, merge tree ≈ 55 % of power,
HBM ≈ 26 %); DESIGN.md §3 records the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import SpArchConfig
from repro.core.stats import SimulationStats
from repro.memory.traffic import TrafficCategory

if TYPE_CHECKING:  # annotation only; repro.metrics imports this module
    from repro.metrics.report import CostReport

#: JEDEC HBM2 energy efficiency used by the paper: 42.6 GB/s per watt.
HBM_GBPS_PER_WATT = 42.6

#: Energy per DRAM byte implied by 42.6 GB/s/W (≈ 23.5 pJ/byte).
ENERGY_PER_DRAM_BYTE = 1.0 / (HBM_GBPS_PER_WATT * 1e9)


@dataclass(frozen=True)
class EnergyConstants:
    """Per-event energy constants (joules per event), 40 nm class.

    Attributes:
        multiply: one FP64 multiplication (Galal & Horowitz-style FPU).
        add: one FP64 addition in the merge tree's adder slice.
        comparator_op: one 64-bit comparator evaluation in a merge array.
        merge_fifo_element: moving one 16-byte element through a merge-tree
            FIFO (write + read of a small SRAM).
        prefetch_element: one 12-byte element access of the large MatB
            prefetch buffer (576 KB SRAM — more expensive per access).
        fetcher_element: one element through the MatA column fetcher's
            look-ahead FIFO.
        writer_element: one element buffered by the partial matrix writer.
        dram_byte: one byte moved to/from HBM.
    """

    multiply: float = 20e-12
    add: float = 12e-12
    comparator_op: float = 7e-12
    merge_fifo_element: float = 60e-12
    prefetch_element: float = 150e-12
    fetcher_element: float = 15e-12
    writer_element: float = 30e-12
    dram_byte: float = ENERGY_PER_DRAM_BYTE


@dataclass
class EnergyBreakdown:
    """Energy (J) per module for one simulated execution."""

    column_fetcher: float = 0.0
    row_prefetcher: float = 0.0
    multiplier_array: float = 0.0
    merge_tree: float = 0.0
    partial_matrix_writer: float = 0.0
    hbm: float = 0.0

    @property
    def total(self) -> float:
        """Total dynamic energy in joules."""
        return (self.column_fetcher + self.row_prefetcher + self.multiplier_array
                + self.merge_tree + self.partial_matrix_writer + self.hbm)

    @property
    def on_chip(self) -> float:
        """Energy excluding DRAM (the accelerator logic and SRAM)."""
        return self.total - self.hbm

    def by_module(self) -> dict[str, float]:
        """Return ``{module name: joules}`` in Figure 13 order."""
        return {
            "Column Fetcher": self.column_fetcher,
            "Row Prefetcher": self.row_prefetcher,
            "Multiplier Array": self.multiplier_array,
            "Merge Tree": self.merge_tree,
            "Partial Mat Writer": self.partial_matrix_writer,
            "HBM": self.hbm,
        }

    def fractions(self) -> dict[str, float]:
        """Return each module's share of the total energy."""
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in self.by_module()}
        return {name: value / total for name, value in self.by_module().items()}


@dataclass
class EnergyModel:
    """Computes energy, power and nJ/FLOP figures from simulation statistics.

    Args:
        constants: per-event energy constants; the defaults reproduce the
            paper's operating point for the Table I configuration.
    """

    constants: EnergyConstants = field(default_factory=EnergyConstants)

    def breakdown(self, stats: SimulationStats, config: SpArchConfig | None = None
                  ) -> EnergyBreakdown:
        """Charge every simulated event and return the per-module energy.

        Args:
            stats: statistics of one simulated SpGEMM execution.
            config: architectural configuration (defaults to Table I); used
                only for structural quantities not recorded in ``stats``.
        """
        config = config or SpArchConfig()
        constants = self.constants

        # Left-matrix elements stream through the look-ahead FIFO once.
        a_elements = stats.traffic.bytes_by_category.get(
            TrafficCategory.MATRIX_A_READ, 0) // max(1, config.element_bytes)
        # Elements entering the prefetch buffer (misses) plus those served
        # from it (hits) each touch the large SRAM once.
        b_read_bytes = stats.traffic.bytes_by_category.get(
            TrafficCategory.MATRIX_B_READ, 0)
        prefetch_accesses = (b_read_bytes // max(1, config.prefetch_element_bytes)
                             + stats.buffer_element_reads)

        merge_fifo_traffic = stats.merge_tree_elements * config.merge_tree_layers

        return EnergyBreakdown(
            column_fetcher=a_elements * constants.fetcher_element,
            row_prefetcher=prefetch_accesses * constants.prefetch_element,
            multiplier_array=stats.multiplications * constants.multiply,
            merge_tree=(stats.comparator_ops * constants.comparator_op
                        + stats.additions * constants.add
                        + merge_fifo_traffic * constants.merge_fifo_element),
            partial_matrix_writer=stats.output_nnz * constants.writer_element,
            hbm=stats.dram_bytes * constants.dram_byte,
        )

    def total_energy(self, stats: SimulationStats,
                     config: SpArchConfig | None = None) -> float:
        """Total dynamic energy of one execution, in joules."""
        return self.breakdown(stats, config).total

    def average_power(self, stats: SimulationStats,
                      config: SpArchConfig | None = None) -> float:
        """Average dynamic power over the execution, in watts."""
        if stats.runtime_seconds <= 0:
            return 0.0
        return self.total_energy(stats, config) / stats.runtime_seconds

    def energy_per_flop(self, stats: SimulationStats,
                        config: SpArchConfig | None = None) -> float:
        """Energy per useful FLOP (the Table III metric), in joules."""
        flops = stats.flops
        if flops == 0:
            return 0.0
        return self.total_energy(stats, config) / flops

    # ------------------------------------------------------------------
    # CostReport views: the same accounting for every registered engine
    # ------------------------------------------------------------------
    def event_energy(self, *, multiplications: int, additions: int,
                     bookkeeping_ops: int, dram_bytes: int
                     ) -> dict[str, float]:
        """Uniform per-event energy of any engine's canonical counters.

        This is the accounting that extends Table III-style energy to the
        baselines: every multiplication, addition, bookkeeping operation
        (charged at the comparator rate — one key comparison / hash probe /
        heap sift class event) and DRAM byte costs the same per-event
        energy regardless of which engine performed it.  DESIGN.md records
        the rationale.
        """
        constants = self.constants
        return {
            "Computation": (multiplications * constants.multiply
                            + additions * constants.add),
            "Bookkeeping": bookkeeping_ops * constants.comparator_op,
            "DRAM": dram_bytes * constants.dram_byte,
        }

    def report_categories(self, report: "CostReport") -> dict[str, float]:
        """Table III-style category split (joules) for *any* cost report.

        Dispatches on the report's ``kind``: simulation reports group their
        per-module energy the way Table III does (Computation = multipliers
        + merge tree, SRAM = the three buffers, DRAM = HBM) — exact, since
        the module split was recorded at simulation time.  Baseline and
        aggregate reports use the uniform per-event accounting of
        :meth:`event_energy` over their canonical counters (an aggregate
        may mix engines, so per-event is the only split that never drops
        energy) — which is exactly what makes the category view comparable
        across engines.
        """
        if report.kind == "simulation":
            modules = report.energy
            return {
                "Computation": (modules.get("Multiplier Array", 0.0)
                                + modules.get("Merge Tree", 0.0)),
                "SRAM": (modules.get("Column Fetcher", 0.0)
                         + modules.get("Row Prefetcher", 0.0)
                         + modules.get("Partial Mat Writer", 0.0)),
                "DRAM": modules.get("HBM", 0.0),
            }
        events = self.event_energy(
            multiplications=report.multiplications,
            additions=report.additions,
            bookkeeping_ops=report.bookkeeping_ops,
            dram_bytes=report.dram_bytes,
        )
        return {
            "Computation": events["Computation"] + events["Bookkeeping"],
            "SRAM": 0.0,
            "DRAM": events["DRAM"],
        }

    def table3_breakdown(self, stats: SimulationStats,
                         config: SpArchConfig | None = None) -> dict[str, float]:
        """Energy per FLOP split into the Table III categories (nJ/FLOP)."""
        breakdown = self.breakdown(stats, config)
        flops = max(1, stats.flops)
        computation = (breakdown.multiplier_array
                       + breakdown.merge_tree) / flops
        sram = (breakdown.column_fetcher + breakdown.row_prefetcher
                + breakdown.partial_matrix_writer) / flops
        dram = breakdown.hbm / flops
        return {
            "Computation": computation * 1e9,
            "SRAM": sram * 1e9,
            "DRAM": dram * 1e9,
            "Overall": (computation + sram + dram) * 1e9,
        }
