"""Micro-architecture building blocks of SpArch (§II-A, Table I).

The modules here model the accelerator datapath:

* :mod:`repro.hardware.comparator_array` — the parallel merge unit (Fig. 3).
* :mod:`repro.hardware.hierarchical_merger` — the two-level comparator array
  that reduces comparator count to O(n^{4/3}) (Fig. 4).
* :mod:`repro.hardware.merge_tree` — the 64-way merge tree of FIFOs and
  shared per-layer mergers (Fig. 5).
* :mod:`repro.hardware.adder` / :mod:`repro.hardware.zero_eliminator` — the
  adder slice and zero eliminator that fold duplicate coordinates (Fig. 6).
* :mod:`repro.hardware.multiplier_array` — the outer-product multipliers.
* :mod:`repro.hardware.fifo` — bounded FIFOs with occupancy statistics.
* :mod:`repro.hardware.clock` — a tiny two-phase clocked-module kernel used
  by the cycle-level micro models.
* :mod:`repro.hardware.streaming` — a clock-stepped micro-model of the merge
  tree used to validate the transaction-level cycle estimates.

Each block provides both a *functional* path (exact results, used to verify
correctness against scipy) and an *activity* model (cycles, comparator
operations, additions) consumed by the performance and energy models.
"""

from repro.hardware.adder import AdderSlice, add_duplicates
from repro.hardware.clock import ClockedModule, CycleSimulator
from repro.hardware.comparator_array import ComparatorArray, merge_windows
from repro.hardware.fifo import Fifo
from repro.hardware.hierarchical_merger import HierarchicalMerger, comparator_count
from repro.hardware.merge_tree import MergeTree, MergeTreeStats
from repro.hardware.multiplier_array import MultiplierArray
from repro.hardware.streaming import StreamingMergeTree, StreamingStats
from repro.hardware.zero_eliminator import ZeroEliminator, eliminate_zeros

__all__ = [
    "AdderSlice",
    "add_duplicates",
    "ClockedModule",
    "CycleSimulator",
    "ComparatorArray",
    "merge_windows",
    "Fifo",
    "HierarchicalMerger",
    "comparator_count",
    "MergeTree",
    "MergeTreeStats",
    "MultiplierArray",
    "StreamingMergeTree",
    "StreamingStats",
    "ZeroEliminator",
    "eliminate_zeros",
]
