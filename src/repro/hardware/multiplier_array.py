"""Outer-product multiplier array (Table I: 2 groups × 8 FP64 multipliers).

Given one element ``(row r, original column k, value v)`` of a condensed
column of the left matrix and row ``k`` of the right matrix, the multiplier
array produces the partial products ``(r, c, v · B[k, c])`` for every nonzero
``c`` of that row.  The products of one left element are already sorted by
column (the right matrix rows are CSR-sorted) and the products of successive
left elements have increasing row index, so each condensed column's partial
matrix leaves the multipliers sorted by (row, column) — ready for the merge
tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.utils.validation import check_positive_int


@dataclass
class MultiplierStats:
    """Activity counters of the multiplier array."""

    multiplications: int = 0
    cycles: int = 0
    left_elements: int = 0


@dataclass
class MultiplierArray:
    """A bank of floating point multipliers.

    Args:
        num_multipliers: total multipliers (16 in SpArch: 2 groups of 8).
    """

    num_multipliers: int = 16
    stats: MultiplierStats = field(default_factory=MultiplierStats)

    def __post_init__(self) -> None:
        check_positive_int(self.num_multipliers, "num_multipliers")

    @property
    def throughput(self) -> int:
        """Multiplications per cycle."""
        return self.num_multipliers

    def multiply_element(self, row: int, value: float, b_cols: np.ndarray,
                         b_vals: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Multiply one left-matrix element against one right-matrix row.

        Returns:
            ``(rows, cols, vals)`` of the produced partial products in COO
            order (constant row, columns ascending).
        """
        b_cols = np.asarray(b_cols, dtype=np.int64)
        b_vals = np.asarray(b_vals, dtype=np.float64)
        if len(b_cols) != len(b_vals):
            raise ValueError("b_cols and b_vals must have equal length")
        count = len(b_cols)
        self.stats.multiplications += count
        self.stats.left_elements += 1
        self.stats.cycles += -(-count // self.throughput) if count else 0
        rows = np.full(count, row, dtype=np.int64)
        return rows, b_cols.copy(), value * b_vals

    def multiply_column(self, left_rows: np.ndarray, left_cols: np.ndarray,
                        left_vals: np.ndarray, matrix_b: CSRMatrix
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Multiply a whole condensed column against the right matrix.

        Args:
            left_rows: row index of each condensed-column element (ascending).
            left_cols: original column index of each element — the right
                matrix row it selects.
            left_vals: element values.
            matrix_b: the right operand in CSR format.

        Returns:
            ``(rows, cols, vals)`` of the column's partial-product matrix in
            (row, column)-sorted COO order.
        """
        left_rows = np.asarray(left_rows, dtype=np.int64)
        left_cols = np.asarray(left_cols, dtype=np.int64)
        left_vals = np.asarray(left_vals, dtype=np.float64)
        if not (len(left_rows) == len(left_cols) == len(left_vals)):
            raise ValueError("left element arrays must have equal length")

        out_rows: list[np.ndarray] = []
        out_cols: list[np.ndarray] = []
        out_vals: list[np.ndarray] = []
        for row, col, value in zip(left_rows, left_cols, left_vals):
            b_cols, b_vals = matrix_b.row(int(col))
            rows, cols, vals = self.multiply_element(int(row), float(value),
                                                     b_cols, b_vals)
            if len(rows):
                out_rows.append(rows)
                out_cols.append(cols)
                out_vals.append(vals)
        if not out_rows:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0)
        return (np.concatenate(out_rows), np.concatenate(out_cols),
                np.concatenate(out_vals))

    def reset_stats(self) -> None:
        """Zero the activity counters."""
        self.stats = MultiplierStats()
