"""Two-phase clocked simulation kernel.

The paper's C++ simulator abstracts each module as a class with a
``clock_update`` method (compute next state from current inputs) and a
``clock_apply`` method (commit the next state, modelling the flip-flops)
(§III-A).  The same structure is reproduced here for the cycle-level micro
models (zero eliminator pipeline, FIFOs, merge-tree node interplay); the
large-scale experiments use the transaction-level models instead because
Python cannot step billions of cycles.
"""

from __future__ import annotations

import abc


class ClockedModule(abc.ABC):
    """A hardware module driven by a two-phase clock.

    Subclasses implement :meth:`clock_update` to compute combinational
    outputs and next-state from the *current* state, and :meth:`clock_apply`
    to latch the next state.  Separating the phases lets modules read each
    other's current-cycle outputs without order dependence, exactly like
    flip-flop based RTL.
    """

    @abc.abstractmethod
    def clock_update(self) -> None:
        """Compute next-state from current state and inputs."""

    @abc.abstractmethod
    def clock_apply(self) -> None:
        """Commit next-state (the rising clock edge)."""


class CycleSimulator:
    """Drives a set of :class:`ClockedModule` instances cycle by cycle."""

    def __init__(self, modules: list[ClockedModule]) -> None:
        if not modules:
            raise ValueError("CycleSimulator requires at least one module")
        self._modules = list(modules)
        self._cycle = 0

    @property
    def cycle(self) -> int:
        """Number of cycles simulated so far."""
        return self._cycle

    def step(self, cycles: int = 1) -> int:
        """Advance the simulation by ``cycles`` clock edges."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        for _ in range(cycles):
            for module in self._modules:
                module.clock_update()
            for module in self._modules:
                module.clock_apply()
            self._cycle += 1
        return self._cycle

    def run_until(self, predicate, *, max_cycles: int = 1_000_000) -> int:
        """Step until ``predicate()`` returns true; raise if it never does."""
        while not predicate():
            if self._cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation did not converge within {max_cycles} cycles"
                )
            self.step()
        return self._cycle
