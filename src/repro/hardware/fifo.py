"""Bounded FIFO with occupancy statistics.

Every node of the merge tree is a FIFO (Fig. 5); the look-ahead FIFO, the
merger FIFOs and the partial matrix writer buffer are all instances of this
class.  The capacity and the observed high-water mark feed the SRAM area and
energy models.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.utils.validation import check_positive_int


class Fifo:
    """A bounded first-in first-out queue.

    Args:
        capacity: maximum number of elements the FIFO can hold.
        name: optional label used in statistics reporting.
    """

    def __init__(self, capacity: int, name: str = "fifo") -> None:
        check_positive_int(capacity, "capacity")
        self._capacity = capacity
        self._name = name
        self._items: deque[Any] = deque()
        self._total_pushed = 0
        self._total_popped = 0
        self._high_water = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Number of elements currently stored."""
        return len(self._items)

    @property
    def free_space(self) -> int:
        """Remaining capacity."""
        return self._capacity - len(self._items)

    @property
    def high_water_mark(self) -> int:
        """Maximum occupancy ever observed."""
        return self._high_water

    @property
    def total_pushed(self) -> int:
        """Total number of elements pushed over the FIFO's lifetime."""
        return self._total_pushed

    @property
    def total_popped(self) -> int:
        """Total number of elements popped over the FIFO's lifetime."""
        return self._total_popped

    def is_empty(self) -> bool:
        return not self._items

    def is_full(self) -> bool:
        return len(self._items) >= self._capacity

    # ------------------------------------------------------------------
    def push(self, item: Any) -> None:
        """Append ``item``; raises :class:`OverflowError` when full."""
        if self.is_full():
            raise OverflowError(f"FIFO {self._name!r} is full (capacity {self._capacity})")
        self._items.append(item)
        self._total_pushed += 1
        self._high_water = max(self._high_water, len(self._items))

    def push_many(self, items: list[Any]) -> int:
        """Push as many of ``items`` as fit; return how many were accepted."""
        accepted = 0
        for item in items:
            if self.is_full():
                break
            self.push(item)
            accepted += 1
        return accepted

    def pop(self) -> Any:
        """Remove and return the oldest element; raises when empty."""
        if self.is_empty():
            raise IndexError(f"FIFO {self._name!r} is empty")
        self._total_popped += 1
        return self._items.popleft()

    def pop_many(self, count: int) -> list[Any]:
        """Pop up to ``count`` elements (fewer if the FIFO drains)."""
        out = []
        for _ in range(count):
            if self.is_empty():
                break
            out.append(self.pop())
        return out

    def peek(self) -> Any:
        """Return the oldest element without removing it."""
        if self.is_empty():
            raise IndexError(f"FIFO {self._name!r} is empty")
        return self._items[0]

    def clear(self) -> None:
        """Drop all stored elements (statistics are preserved)."""
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return (f"Fifo(name={self._name!r}, occupancy={self.occupancy}/"
                f"{self._capacity})")
