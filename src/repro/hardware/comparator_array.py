"""Comparator-array based parallel merge unit (§II-A.1, Figure 3).

A naive two-pointer merger outputs one element per cycle.  SpArch replaces
the pointers with sliding windows of size *N*: an N×N array of comparators
compares every element of window *A* against every element of window *B*,
and the boundary between the '≥' and '<' regions identifies, for every
diagonal group *k*, the k-th smallest element of the union — so 2N merged
elements are produced per window comparison with no data dependency between
comparators (all outputs settle in a single cycle).

This module provides two things:

* :func:`merge_windows` — an exact implementation of the boundary rules of
  Figure 3, used by the unit tests to validate the hardware logic on the
  paper's own example.
* :class:`ComparatorArray` — the streaming merger: merges two arbitrarily
  long sorted arrays by repeatedly applying window comparisons, while
  counting cycles and comparator operations for the performance and energy
  models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive_int


def comparison_matrix(a_keys: list[int], b_keys: list[int]) -> list[list[bool]]:
    """Build the padded '≥'/'<' comparison matrix of Figure 3.

    Rows correspond to the *left* input array ``a`` and columns to the *top*
    input array ``b``; entry ``(i, j)`` is True ('≥') when ``a[i] >= b[j]``.
    A dummy column of '<' is padded on the right and a dummy row of '≥' at
    the bottom, as the paper prescribes, so the result has shape
    ``(len(a) + 1) × (len(b) + 1)``.
    """
    rows, cols = len(a_keys), len(b_keys)
    ge = [[a_keys[i] >= b_keys[j] for j in range(cols)] + [False]
          for i in range(rows)]
    ge.append([True] * (cols + 1))
    return ge


def boundary_tiles(ge: list[list[bool]]) -> list[tuple[int, int]]:
    """Return the boundary tiles of a padded comparison matrix.

    The rules of §II-A.1: the top-left corner is a boundary; a '≥' tile whose
    top neighbour is '<' is a boundary (tiles in the first row treat the
    missing neighbour as '<'); a '<' tile whose left neighbour is '≥' is a
    boundary (tiles in the first column treat the missing neighbour as '≥').
    Exactly one boundary tile falls on each diagonal group.
    """
    num_rows = len(ge)
    num_cols = len(ge[0]) if num_rows else 0
    tiles = []
    for i in range(num_rows):
        for j in range(num_cols):
            above_lt = (i == 0) or not ge[i - 1][j]
            left_ge = (j == 0) or ge[i][j - 1]
            if (ge[i][j] and above_lt) or (not ge[i][j] and left_ge):
                tiles.append((i, j))
    return tiles


def merge_windows(a: list[tuple[int, float]], b: list[tuple[int, float]]
                  ) -> list[tuple[int, float]]:
    """Merge two sorted windows using the comparator-array boundary rules.

    Implements Figure 3 literally: build the '≥'/'<' comparison matrix (with
    the dummy padding column/row), mark boundary tiles, and emit one output
    per diagonal group: a '≥' boundary tile outputs the top element ``b[j]``,
    a '<' tile outputs the left element ``a[i]``.  Duplicate coordinates are
    *not* combined — that is the adder slice's job.

    Args:
        a: left window ``(coordinate, value)`` pairs, sorted by coordinate.
        b: top window ``(coordinate, value)`` pairs, sorted by coordinate.

    Returns:
        The sorted union of ``a`` and ``b`` (length ``len(a) + len(b)``).
    """
    if not a:
        return list(b)
    if not b:
        return list(a)
    ge = comparison_matrix([key for key, _ in a], [key for key, _ in b])
    outputs: dict[int, tuple[int, float]] = {}
    for i, j in boundary_tiles(ge):
        group = i + j
        if group >= len(a) + len(b):
            continue  # the pad-corner tile falls outside the output range
        if ge[i][j]:
            value = b[j] if j < len(b) else a[i]
        else:
            value = a[i] if i < len(a) else b[j]
        if group in outputs:
            raise AssertionError(
                f"diagonal group {group} produced two outputs; the comparison "
                "matrix is not monotone (inputs must be sorted)"
            )
        outputs[group] = value
    merged = [outputs[k] for k in range(len(a) + len(b))]
    return merged


@dataclass
class MergerStats:
    """Activity counters of one merger instance."""

    cycles: int = 0
    comparator_ops: int = 0
    elements_merged: int = 0

    def merge_into(self, other: "MergerStats") -> None:
        """Accumulate ``self`` into ``other`` (used by the merge tree)."""
        other.cycles += self.cycles
        other.comparator_ops += self.comparator_ops
        other.elements_merged += self.elements_merged


@dataclass
class ComparatorArray:
    """Streaming binary merger built around an N×N comparator array.

    Args:
        size: window size *N*; the array contains ``size * size`` comparators
            and sustains a throughput of ``size`` merged elements per cycle.
    """

    size: int
    stats: MergerStats = field(default_factory=MergerStats)

    def __post_init__(self) -> None:
        check_positive_int(self.size, "size")

    # ------------------------------------------------------------------
    @property
    def num_comparators(self) -> int:
        """Number of comparators in the flat array (O(N²))."""
        return self.size * self.size

    @property
    def throughput(self) -> int:
        """Sustained merged elements per cycle."""
        return self.size

    # ------------------------------------------------------------------
    def merge(self, a_keys: np.ndarray, a_vals: np.ndarray,
              b_keys: np.ndarray, b_vals: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
        """Merge two sorted key/value streams into one sorted stream.

        Functionally this is a stable two-way merge on the keys; the activity
        model charges ``ceil(output_length / throughput)`` cycles and
        ``num_comparators`` comparator operations per cycle, which is how the
        real array behaves in steady state.

        Returns:
            ``(merged_keys, merged_values)``; duplicates are preserved.
        """
        a_keys = np.asarray(a_keys, dtype=np.int64)
        b_keys = np.asarray(b_keys, dtype=np.int64)
        a_vals = np.asarray(a_vals, dtype=np.float64)
        b_vals = np.asarray(b_vals, dtype=np.float64)
        if len(a_keys) != len(a_vals) or len(b_keys) != len(b_vals):
            raise ValueError("key and value arrays must have equal length")

        total = len(a_keys) + len(b_keys)
        if total == 0:
            merged_keys = np.empty(0, dtype=np.int64)
            merged_vals = np.empty(0, dtype=np.float64)
        else:
            keys = np.concatenate([a_keys, b_keys])
            vals = np.concatenate([a_vals, b_vals])
            order = np.argsort(keys, kind="stable")
            merged_keys = keys[order]
            merged_vals = vals[order]

        cycles = -(-total // self.throughput) if total else 0
        self.stats.cycles += cycles
        self.stats.comparator_ops += cycles * self.num_comparators
        self.stats.elements_merged += total
        return merged_keys, merged_vals

    def merge_cycles(self, total_elements: int) -> int:
        """Cycles needed to stream ``total_elements`` through the merger."""
        if total_elements < 0:
            raise ValueError("total_elements must be non-negative")
        return -(-total_elements // self.throughput) if total_elements else 0

    def reset_stats(self) -> None:
        """Zero the activity counters."""
        self.stats = MergerStats()

    def __repr__(self) -> str:
        return f"ComparatorArray(size={self.size})"
