"""Merge tree (§II-A.3, Figure 5).

A single hierarchical merger merges two sorted streams.  To merge up to 64
partial matrices at once, SpArch stacks binary mergers into a full binary
tree: every node is a FIFO, input arrays enter at the leaves, the final
stream leaves the root.  Because the root bounds the throughput, each *layer*
of the tree shares one physical merger.

The class below merges a list of COO-format partial matrices (already sorted
by linearised (row, column) key) into one canonical stream.  It reports:

* functional result — the merged, duplicate-folded, zero-eliminated stream;
* activity — cycles (throughput-bound by the root merger), comparator
  operations per layer, floating point additions, FIFO traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.adder import AdderSlice
from repro.hardware.fifo import Fifo
from repro.hardware.hierarchical_merger import HierarchicalMerger
from repro.hardware.zero_eliminator import eliminate_zeros
from repro.utils.validation import check_positive_int


@dataclass
class MergeTreeStats:
    """Activity counters accumulated over one or more merge operations."""

    cycles: int = 0
    comparator_ops: int = 0
    additions: int = 0
    elements_into_root: int = 0
    elements_out: int = 0
    layer_elements: dict[int, int] = field(default_factory=dict)

    def record_layer(self, layer: int, elements: int) -> None:
        """Accumulate the number of elements that traversed ``layer``."""
        self.layer_elements[layer] = self.layer_elements.get(layer, 0) + elements


class MergeTree:
    """A ``2**num_layers``-way streaming merge tree.

    Args:
        num_layers: tree depth; the tree merges up to ``2**num_layers``
            sorted input arrays in one pass (6 layers → 64-way in SpArch).
        merger_width: elements merged per cycle by the (shared) merger of
            each layer (16 in SpArch).
        chunk_size: low-level comparator array width of the hierarchical
            merger (4 in SpArch).
        fifo_capacity: capacity of each node FIFO, used only for occupancy
            accounting in the SRAM model.
    """

    def __init__(self, num_layers: int = 6, merger_width: int = 16,
                 chunk_size: int = 4, fifo_capacity: int = 1024) -> None:
        check_positive_int(num_layers, "num_layers")
        check_positive_int(merger_width, "merger_width")
        check_positive_int(fifo_capacity, "fifo_capacity")
        self._num_layers = num_layers
        self._merger_width = merger_width
        self._chunk_size = chunk_size
        self._fifo_capacity = fifo_capacity
        # One shared merger per layer (Figure 5: "each layer shares one
        # merger to balance the throughput").
        self._layer_mergers = [
            HierarchicalMerger(total_width=merger_width, chunk_size=chunk_size)
            for _ in range(num_layers)
        ]
        self._adder = AdderSlice()
        self.stats = MergeTreeStats()

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return self._num_layers

    @property
    def num_ways(self) -> int:
        """Maximum number of input arrays merged in a single pass."""
        return 2 ** self._num_layers

    @property
    def merger_width(self) -> int:
        return self._merger_width

    @property
    def num_mergers(self) -> int:
        """Physical mergers instantiated (one per layer)."""
        return self._num_layers

    @property
    def total_comparators(self) -> int:
        """Comparators across all layer mergers, for the area model."""
        return sum(m.num_comparators for m in self._layer_mergers)

    @property
    def total_fifo_entries(self) -> int:
        """Total FIFO storage (one FIFO per tree node), for the SRAM model."""
        num_nodes = 2 ** (self._num_layers + 1) - 1
        return num_nodes * self._fifo_capacity

    # ------------------------------------------------------------------
    def merge(self, streams: list[tuple[np.ndarray, np.ndarray]]
              ) -> tuple[np.ndarray, np.ndarray]:
        """Merge sorted key/value streams into one folded, zero-free stream.

        Args:
            streams: list of ``(keys, values)`` pairs; each ``keys`` array
                must be sorted non-decreasingly (keys are linearised
                (row, column) coordinates).  The list length must not exceed
                :attr:`num_ways`.

        Returns:
            ``(keys, values)`` of the merged stream with duplicate keys summed
            and exact zeros removed.
        """
        if len(streams) > self.num_ways:
            raise ValueError(
                f"cannot merge {len(streams)} streams on a {self.num_ways}-way tree"
            )
        cleaned: list[tuple[np.ndarray, np.ndarray]] = []
        for keys, values in streams:
            keys = np.asarray(keys, dtype=np.int64)
            values = np.asarray(values, dtype=np.float64)
            if len(keys) != len(values):
                raise ValueError("keys and values must have equal length")
            if len(keys) > 1 and np.any(np.diff(keys) < 0):
                raise ValueError("merge tree inputs must be key-sorted")
            cleaned.append((keys, values))
        if not cleaned:
            return np.empty(0, dtype=np.int64), np.empty(0)

        # Pairwise tournament, layer by layer, exactly like the binary tree.
        current = cleaned
        layer = 0
        while len(current) > 1:
            merger = self._layer_mergers[min(layer, self._num_layers - 1)]
            next_level: list[tuple[np.ndarray, np.ndarray]] = []
            layer_traffic = 0
            for i in range(0, len(current), 2):
                if i + 1 >= len(current):
                    next_level.append(current[i])
                    continue
                a_keys, a_vals = current[i]
                b_keys, b_vals = current[i + 1]
                merged_keys, merged_vals = merger.merge(a_keys, a_vals,
                                                        b_keys, b_vals)
                layer_traffic += len(merged_keys)
                next_level.append((merged_keys, merged_vals))
            self.stats.record_layer(layer, layer_traffic)
            current = next_level
            layer += 1

        merged_keys, merged_vals = current[0]
        self.stats.elements_into_root += len(merged_keys)

        folded_keys, folded_vals = self._adder.fold(merged_keys, merged_vals)
        out_keys, out_vals = eliminate_zeros(folded_keys, folded_vals)
        self.stats.additions = self._adder.stats.additions
        self.stats.elements_out += len(out_keys)
        self.stats.comparator_ops = sum(
            m.stats.comparator_ops for m in self._layer_mergers
        )
        # The tree is throughput-bound by the root merger; layers operate in
        # a pipelined fashion, so the cycle count is the root traffic divided
        # by the merger width plus a fill latency of one FIFO per layer.
        root_cycles = -(-len(merged_keys) // self._merger_width) if len(merged_keys) else 0
        self.stats.cycles += root_cycles + self._num_layers
        return out_keys, out_vals

    def merge_cycles(self, total_output_elements: int) -> int:
        """Cycles to stream ``total_output_elements`` through the root."""
        if total_output_elements < 0:
            raise ValueError("total_output_elements must be non-negative")
        if total_output_elements == 0:
            return 0
        return -(-total_output_elements // self._merger_width) + self._num_layers

    def reset_stats(self) -> None:
        """Zero all activity counters."""
        self.stats = MergeTreeStats()
        for merger in self._layer_mergers:
            merger.reset_stats()
        self._adder.reset_stats()

    def __repr__(self) -> str:
        return (f"MergeTree(num_layers={self._num_layers}, "
                f"ways={self.num_ways}, merger_width={self._merger_width})")
