"""Cycle-level streaming model of the merge tree (§II-A.3, Figure 5).

The transaction-level :class:`repro.hardware.merge_tree.MergeTree` charges
``ceil(elements / merger_width)`` cycles per merge — the steady-state
throughput of the pipelined tree.  This module provides a *clock-stepped*
model built from :class:`~repro.hardware.clock.ClockedModule` pieces:

* every tree node is a bounded FIFO;
* each layer owns one shared binary merger that, every cycle, picks one
  ready node pair of its layer (round-robin), pops up to ``merger_width``
  elements from the pair and pushes the merged window to the parent FIFO —
  "each layer shares one merger to balance the throughput";
* the root FIFO drains ``merger_width`` elements per cycle to the partial
  matrix writer, modelling the DRAM write port.

It is used by the tests to validate that the transaction-level cycle model
is a faithful steady-state abstraction (the clock-stepped cycle count stays
within a small factor of the throughput bound), and by anyone who wants to
inspect per-cycle FIFO occupancies.  It is far too slow for full benchmark
matrices — exactly why the large-scale experiments use the transaction
model (DESIGN.md §3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.hardware.clock import ClockedModule, CycleSimulator
from repro.utils.validation import check_positive_int


@dataclass
class StreamingStats:
    """Per-run statistics of the clock-stepped merge tree."""

    cycles: int = 0
    elements_out: int = 0
    merger_busy_cycles: dict[int, int] = field(default_factory=dict)
    fifo_high_water: dict[str, int] = field(default_factory=dict)

    def utilization(self, layer: int) -> float:
        """Busy fraction of the shared merger of ``layer``."""
        if self.cycles == 0:
            return 0.0
        return self.merger_busy_cycles.get(layer, 0) / self.cycles


class _NodeFifo:
    """A bounded FIFO of (key, value) element tuples with drain tracking.

    Backed by :class:`collections.deque` so popping from the front is O(1);
    the original list-slicing implementation copied the whole backlog on
    every pop, turning long merges quadratic.
    """

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        self.items: deque[tuple[int, float]] = deque()
        self.source_exhausted = False
        self.high_water = 0

    def push_many(self, elements: list[tuple[int, float]]) -> None:
        self.items.extend(elements)
        self.high_water = max(self.high_water, len(self.items))

    def pop_many(self, count: int) -> list[tuple[int, float]]:
        pop = self.items.popleft
        return [pop() for _ in range(min(count, len(self.items)))]

    @property
    def free_space(self) -> int:
        return self.capacity - len(self.items)

    @property
    def drained(self) -> bool:
        """True when no element will ever appear here again."""
        return self.source_exhausted and not self.items


class _LayerMerger(ClockedModule):
    """The single binary merger shared by one layer of the tree."""

    def __init__(self, layer: int, pairs: list[tuple[_NodeFifo, _NodeFifo, _NodeFifo]],
                 width: int, stats: StreamingStats) -> None:
        self._layer = layer
        self._pairs = pairs
        self._width = width
        self._stats = stats
        self._round_robin = 0
        self._pending: tuple[_NodeFifo, list[tuple[int, float]]] | None = None

    def clock_update(self) -> None:
        self._pending = None
        for offset in range(len(self._pairs)):
            index = (self._round_robin + offset) % len(self._pairs)
            left, right, parent = self._pairs[index]
            if parent.free_space < self._width:
                continue
            if left.drained and right.drained:
                if not parent.source_exhausted:
                    parent.source_exhausted = True
                continue
            # The merger may only consume elements it can safely order: it can
            # take from one child past the other's horizon only when the other
            # child is fully drained.
            merged = self._merge_window(left, right)
            if not merged:
                continue
            self._pending = (parent, merged)
            self._round_robin = (index + 1) % len(self._pairs)
            break

    def clock_apply(self) -> None:
        if self._pending is None:
            return
        parent, merged = self._pending
        parent.push_many(merged)
        self._stats.merger_busy_cycles[self._layer] = (
            self._stats.merger_busy_cycles.get(self._layer, 0) + 1)

    # ------------------------------------------------------------------
    def _merge_window(self, left: _NodeFifo, right: _NodeFifo
                      ) -> list[tuple[int, float]]:
        """Pop up to ``width`` safely mergeable elements from the child pair.

        An element may only be emitted when it is provably the smallest key
        either child will ever offer: when the other child still has pending
        elements to compare against, or is fully drained.  Otherwise the
        merger stalls for this pair — exactly what the hardware does when a
        child FIFO runs empty mid-stream.
        """
        budget = self._width
        output: list[tuple[int, float]] = []
        while budget > 0:
            if left.items and (right.drained or (
                    right.items and left.items[0][0] <= right.items[0][0])):
                source = left
            elif right.items and (left.drained or (
                    left.items and right.items[0][0] < left.items[0][0])):
                source = right
            else:
                break
            output.append(source.pop_many(1)[0])
            budget -= 1
        return output


class StreamingMergeTree:
    """Clock-stepped ``2**num_layers``-way merge tree.

    Args:
        num_layers: tree depth (6 → 64-way in SpArch).
        merger_width: elements each layer's shared merger moves per cycle.
        fifo_capacity: capacity of every node FIFO.
    """

    def __init__(self, num_layers: int = 3, merger_width: int = 16,
                 fifo_capacity: int = 64) -> None:
        check_positive_int(num_layers, "num_layers")
        check_positive_int(merger_width, "merger_width")
        check_positive_int(fifo_capacity, "fifo_capacity")
        self._num_layers = num_layers
        self._width = merger_width
        self._fifo_capacity = fifo_capacity

    @property
    def num_ways(self) -> int:
        return 2 ** self._num_layers

    # ------------------------------------------------------------------
    def merge(self, streams: list[tuple[np.ndarray, np.ndarray]], *,
              max_cycles: int = 1_000_000
              ) -> tuple[np.ndarray, np.ndarray, StreamingStats]:
        """Merge sorted key/value streams cycle by cycle.

        Unlike the transaction-level tree, duplicates are *not* folded here —
        this model validates the movement of elements through the FIFOs, not
        the adder/zero-eliminator datapath.

        Returns:
            ``(keys, values, stats)`` where ``keys`` is the sorted
            interleaving of all inputs and ``stats`` holds the cycle count
            and per-layer merger utilisation.
        """
        if len(streams) > self.num_ways:
            raise ValueError(
                f"cannot merge {len(streams)} streams on a {self.num_ways}-way tree")
        stats = StreamingStats()
        if not streams:
            return np.empty(0, np.int64), np.empty(0), stats

        # Build the FIFO tree: leaves hold the input streams in full (the
        # leaves model the multiplier-side FIFOs which are backed by DRAM, so
        # they are not capacity-limited).
        leaves: list[_NodeFifo] = []
        for index in range(self.num_ways):
            fifo = _NodeFifo(f"leaf{index}", capacity=1 << 60)
            if index < len(streams):
                keys, values = streams[index]
                keys = np.asarray(keys, dtype=np.int64)
                values = np.asarray(values, dtype=np.float64)
                if len(keys) != len(values):
                    raise ValueError("keys and values must have equal length")
                if len(keys) > 1 and np.any(np.diff(keys) < 0):
                    raise ValueError("streaming merge tree inputs must be sorted")
                fifo.push_many(list(zip(keys.tolist(), values.tolist())))
            fifo.source_exhausted = True
            leaves.append(fifo)

        mergers: list[_LayerMerger] = []
        current_level = leaves
        for layer in range(self._num_layers):
            is_root_layer = layer == self._num_layers - 1
            parents: list[_NodeFifo] = []
            pairs = []
            for index in range(0, len(current_level), 2):
                capacity = 1 << 60 if is_root_layer else self._fifo_capacity
                parent = _NodeFifo(f"L{layer}n{index // 2}", capacity)
                pairs.append((current_level[index], current_level[index + 1],
                              parent))
                parents.append(parent)
            mergers.append(_LayerMerger(layer, pairs, self._width, stats))
            current_level = parents
        root = current_level[0]

        simulator = CycleSimulator(mergers)
        simulator.run_until(lambda: root.drained or root.source_exhausted,
                            max_cycles=max_cycles)
        stats.cycles = simulator.cycle
        for fifo in leaves:
            stats.fifo_high_water[fifo.name] = fifo.high_water

        keys = np.array([key for key, _ in root.items], dtype=np.int64)
        values = np.array([value for _, value in root.items])
        stats.elements_out = len(keys)
        return keys, values, stats
