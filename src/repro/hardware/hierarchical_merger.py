"""Hierarchical (two-level) comparator array (§II-A.2, Figure 4).

A flat N×N comparator array needs O(N²) comparators.  SpArch splits the
input windows into chunks: a *top-level* array compares only the last (and
largest) element of each chunk to decide which chunk pairs overlap, and
*low-level* arrays merge just those chunk pairs in parallel.  With an
n^{2/3} × n^{2/3} top-level array and n^{1/3} × n^{1/3} low-level arrays the
merger processes *n* elements per cycle using only

    (2·n^{2/3} − 1) · (n^{1/3})² + (n^{2/3})²  =  O(n^{4/3})

comparators.  SpArch instantiates the 16-wide variant (4×4 top + 4×4 low).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.comparator_array import (
    ComparatorArray,
    MergerStats,
    boundary_tiles,
    comparison_matrix,
)
from repro.utils.validation import check_positive_int


def comparator_count(total_width: int, chunk_size: int) -> int:
    """Number of comparators of a hierarchical merger.

    Args:
        total_width: elements merged per cycle (*n* in the paper's formula).
        chunk_size: width of each low-level comparator array (n^{1/3} for the
            asymptotically optimal split; 4 in SpArch's 16-wide merger).

    Returns:
        ``(2·num_chunks − 1) · chunk_size² + num_chunks²`` where
        ``num_chunks = total_width / chunk_size``.
    """
    check_positive_int(total_width, "total_width")
    check_positive_int(chunk_size, "chunk_size")
    if total_width % chunk_size != 0:
        raise ValueError(
            f"total_width {total_width} must be a multiple of chunk_size {chunk_size}"
        )
    num_chunks = total_width // chunk_size
    low_level = (2 * num_chunks - 1) * chunk_size * chunk_size
    top_level = num_chunks * num_chunks
    return low_level + top_level


def chunk_pairs(a_chunk_maxima: list[int], b_chunk_maxima: list[int]
                ) -> list[tuple[int, int]]:
    """Select the chunk pairs the low-level arrays must merge.

    The top-level comparator array compares the last (largest) element of
    every chunk.  Its boundary tiles (the same rules as Figure 3) define a
    monotone staircase from the first chunk pair to the last; each boundary
    tile is one ``(a_chunk, b_chunk)`` pair handed to a low-level array.  For
    fully overlapping inputs with *c* chunks per side this yields the
    ``2·c − 1`` pairs shown in Figure 4.

    Args:
        a_chunk_maxima: last (largest) element of each chunk of the left
            input array.
        b_chunk_maxima: last element of each chunk of the top input array.

    Returns:
        ``(a_chunk_index, b_chunk_index)`` pairs in diagonal-group order.
    """
    if not a_chunk_maxima or not b_chunk_maxima:
        return []
    num_a, num_b = len(a_chunk_maxima), len(b_chunk_maxima)
    ge = comparison_matrix(list(a_chunk_maxima), list(b_chunk_maxima))
    pairs: list[tuple[int, int]] = []
    for i, j in sorted(boundary_tiles(ge), key=lambda tile: tile[0] + tile[1]):
        if i + j >= num_a + num_b - 1:
            continue  # staircase ends once both final chunks are paired
        pairs.append((min(i, num_a - 1), min(j, num_b - 1)))
    return pairs


@dataclass
class HierarchicalMerger:
    """A two-level comparator-array merger.

    Args:
        total_width: merged elements per cycle (16 in SpArch).
        chunk_size: width of the low-level arrays (4 in SpArch).
    """

    total_width: int = 16
    chunk_size: int = 4
    stats: MergerStats = field(default_factory=MergerStats)

    def __post_init__(self) -> None:
        check_positive_int(self.total_width, "total_width")
        check_positive_int(self.chunk_size, "chunk_size")
        if self.total_width % self.chunk_size != 0:
            raise ValueError(
                f"total_width {self.total_width} must be a multiple of "
                f"chunk_size {self.chunk_size}"
            )
        self._flat_equivalent = ComparatorArray(self.total_width)

    # ------------------------------------------------------------------
    @property
    def num_chunks(self) -> int:
        """Number of chunks per input window."""
        return self.total_width // self.chunk_size

    @property
    def num_comparators(self) -> int:
        """Comparator count, O(n^{4/3}) instead of the flat O(n²)."""
        return comparator_count(self.total_width, self.chunk_size)

    @property
    def throughput(self) -> int:
        """Sustained merged elements per cycle (same as a flat array)."""
        return self.total_width

    @property
    def comparator_savings(self) -> float:
        """Ratio of flat-array comparators to hierarchical comparators."""
        flat = self.total_width * self.total_width
        return flat / self.num_comparators

    # ------------------------------------------------------------------
    def merge(self, a_keys: np.ndarray, a_vals: np.ndarray,
              b_keys: np.ndarray, b_vals: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
        """Merge two sorted streams; see :meth:`ComparatorArray.merge`.

        The functional result is identical to a flat array; only the
        comparator-operation count (and therefore energy) differs.
        """
        a_keys = np.asarray(a_keys, dtype=np.int64)
        b_keys = np.asarray(b_keys, dtype=np.int64)
        a_vals = np.asarray(a_vals, dtype=np.float64)
        b_vals = np.asarray(b_vals, dtype=np.float64)
        if len(a_keys) != len(a_vals) or len(b_keys) != len(b_vals):
            raise ValueError("key and value arrays must have equal length")

        total = len(a_keys) + len(b_keys)
        if total == 0:
            merged_keys = np.empty(0, dtype=np.int64)
            merged_vals = np.empty(0, dtype=np.float64)
        else:
            keys = np.concatenate([a_keys, b_keys])
            vals = np.concatenate([a_vals, b_vals])
            order = np.argsort(keys, kind="stable")
            merged_keys = keys[order]
            merged_vals = vals[order]

        cycles = -(-total // self.throughput) if total else 0
        self.stats.cycles += cycles
        self.stats.comparator_ops += cycles * self.num_comparators
        self.stats.elements_merged += total
        return merged_keys, merged_vals

    def merge_cycles(self, total_elements: int) -> int:
        """Cycles needed to stream ``total_elements`` through the merger."""
        if total_elements < 0:
            raise ValueError("total_elements must be non-negative")
        return -(-total_elements // self.throughput) if total_elements else 0

    def reset_stats(self) -> None:
        """Zero the activity counters."""
        self.stats = MergerStats()

    def __repr__(self) -> str:
        return (f"HierarchicalMerger(total_width={self.total_width}, "
                f"chunk_size={self.chunk_size})")
