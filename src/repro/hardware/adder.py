"""Adder slice (§II-A.4).

The comparator-array merger only *interleaves* elements; elements that carry
the same (row, column) coordinate end up adjacent in the merged stream and
must be summed.  A slice of adders immediately after the merger adds each
pair of adjacent same-coordinate elements, writes the sum into one of them
and zeroes the other; the zero eliminator then squeezes the zeros out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class AdderStats:
    """Activity counters of the adder slice."""

    additions: int = 0
    elements_processed: int = 0


class AdderSlice:
    """Folds adjacent same-coordinate elements of a sorted stream.

    The functional output keeps one entry per distinct coordinate (with
    summed value, possibly zero — zeros are removed later by the zero
    eliminator).  The number of floating point additions performed is
    tracked for the energy model.
    """

    def __init__(self) -> None:
        self.stats = AdderStats()

    def fold(self, keys: np.ndarray, values: np.ndarray
             ) -> tuple[np.ndarray, np.ndarray]:
        """Sum runs of equal keys in a key-sorted stream.

        Args:
            keys: coordinate keys, sorted non-decreasingly.
            values: values aligned with ``keys``.

        Returns:
            ``(unique_keys, summed_values)`` — one entry per distinct key, in
            order; accumulated zeros are *kept* (the zero eliminator drops
            them).
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        self.stats.elements_processed += len(keys)
        if len(keys) == 0:
            return keys.copy(), values.copy()
        if np.any(keys[1:] < keys[:-1]):
            raise ValueError("adder slice requires a key-sorted input stream")

        # Runs of equal keys are contiguous in the sorted stream, so one
        # boundary mask + np.add.reduceat folds every run at once.
        run_starts = np.empty(len(keys), dtype=bool)
        run_starts[0] = True
        np.not_equal(keys[1:], keys[:-1], out=run_starts[1:])
        starts = np.flatnonzero(run_starts)
        unique_keys = keys[starts]
        summed = np.add.reduceat(values, starts)
        # Each run of k equal keys needs k-1 additions.
        self.stats.additions += len(keys) - len(starts)
        return unique_keys, summed

    def reset_stats(self) -> None:
        """Zero the activity counters."""
        self.stats = AdderStats()


def add_duplicates(keys: np.ndarray, values: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray, int]:
    """Functional helper: fold duplicates and report the addition count."""
    adder = AdderSlice()
    folded_keys, folded_values = adder.fold(keys, values)
    return folded_keys, folded_values, adder.stats.additions
