"""Zero eliminator (§II-A.4, Figure 6).

After the adder slice has folded same-coordinate elements, the folded
positions hold zeros that must be squeezed out before the stream re-enters a
FIFO.  The zero eliminator has two parts:

1. a prefix-sum module that computes ``zero_count`` — the number of zeros
   *before* (and including preceding) each element, and
2. a ``log2(N)``-layer shifter whose layer *k* shifts an element left by
   ``2**k`` positions iff bit *k* of its ``zero_count`` is set.

Unlike a conventional barrel shifter, every MUX is controlled by its own
element's ``zero_count``, so different elements shift by different amounts in
the same cycle.  The latency is ``log2(N)`` cycles for an input of width
``N``.

The module offers both the staged bit-by-bit model (:class:`ZeroEliminator`,
used by the unit tests to validate the shifting network of Figure 6) and a
vectorised functional helper (:func:`eliminate_zeros`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

import numpy as np

from repro.utils.validation import check_positive_int


def eliminate_zeros(keys: np.ndarray, values: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Drop entries whose value is exactly zero, preserving order.

    This is the functional contract of the zero eliminator; the hardware
    achieves it with the staged shifter modelled by :class:`ZeroEliminator`.
    """
    keys = np.asarray(keys, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if len(keys) != len(values):
        raise ValueError("keys and values must have equal length")
    keep = values != 0.0
    return keys[keep], values[keep]


def zero_counts(values: list[float]) -> list[int]:
    """Prefix count of zeros strictly before each position (first stage).

    ``zero_counts([1, 0, 0, 2])`` returns ``[0, 0, 1, 2]`` — element ``2``
    has two zeros in front of it and must therefore shift left by two.
    """
    counts = []
    zeros_so_far = 0
    for value in values:
        counts.append(zeros_so_far)
        if value == 0.0:
            zeros_so_far += 1
    return counts


@dataclass
class ZeroEliminatorTrace:
    """Intermediate state of every shifter layer, for inspection/testing."""

    layers: list[list[float]] = field(default_factory=list)


class ZeroEliminator:
    """Staged log-shifter model of the zero eliminator.

    Args:
        width: number of elements processed per invocation (*N* in Figure 6);
            the latency is ``ceil(log2(width))`` cycles.
    """

    def __init__(self, width: int) -> None:
        check_positive_int(width, "width")
        self._width = width
        self._num_layers = max(1, math.ceil(math.log2(width))) if width > 1 else 1
        self.total_elements = 0
        self.total_invocations = 0

    @property
    def width(self) -> int:
        return self._width

    @property
    def num_layers(self) -> int:
        """Number of shifter layers == pipeline latency in cycles."""
        return self._num_layers

    @property
    def latency_cycles(self) -> int:
        """Latency of one invocation (the shifter is fully pipelined)."""
        return self._num_layers

    def compress(self, keys: list[int], values: list[float],
                 *, trace: ZeroEliminatorTrace | None = None
                 ) -> tuple[list[int], list[float]]:
        """Compress one window of at most ``width`` elements.

        Zero-valued entries are removed and the survivors are packed to the
        left, exactly as the layered shifter of Figure 6 does.  When ``trace``
        is given, the value vector after every shifter layer is appended to
        ``trace.layers`` so tests can check the per-layer behaviour.

        Returns:
            ``(packed_keys, packed_values)`` with zeros removed.
        """
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if len(keys) > self._width:
            raise ValueError(
                f"window of {len(keys)} elements exceeds eliminator width "
                f"{self._width}"
            )
        self.total_elements += len(keys)
        self.total_invocations += 1

        counts = zero_counts(values)
        # Work on fixed-width lanes; empty lanes hold (None, 0.0).
        lane_keys: list[int | None] = list(keys) + [None] * (self._width - len(keys))
        lane_vals: list[float] = list(values) + [0.0] * (self._width - len(keys))
        lane_counts = counts + [0] * (self._width - len(counts))

        for layer in range(self._num_layers):
            shift = 1 << layer
            new_keys: list[int | None] = [None] * self._width
            new_vals = [0.0] * self._width
            new_counts = [0] * self._width
            for pos in range(self._width):
                if lane_vals[pos] == 0.0 and lane_keys[pos] is None:
                    continue
                # A zero produced by the adder still occupies a lane until a
                # later element shifts over it; it simply never moves left.
                if lane_vals[pos] == 0.0:
                    continue
                target = pos - shift if (lane_counts[pos] >> layer) & 1 else pos
                new_keys[target] = lane_keys[pos]
                new_vals[target] = lane_vals[pos]
                new_counts[target] = lane_counts[pos]
            lane_keys, lane_vals, lane_counts = new_keys, new_vals, new_counts
            if trace is not None:
                trace.layers.append(list(lane_vals))

        packed_keys: list[int] = []
        packed_vals: list[float] = []
        for key, value in zip(lane_keys, lane_vals):
            if key is not None and value != 0.0:
                packed_keys.append(key)
                packed_vals.append(value)
        return packed_keys, packed_vals

    def __repr__(self) -> str:
        return f"ZeroEliminator(width={self._width}, layers={self._num_layers})"
