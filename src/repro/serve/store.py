"""The shared, concurrent-safe cost-report store behind runner and service.

:class:`ReportStore` is the :class:`~repro.experiments.runner.ExperimentRunner`
memo *promoted to a subsystem*: one content-addressed map from point keys
(:meth:`ExperimentRunner.point_key`) to serialised
:class:`~repro.metrics.report.CostReport` payloads, shared by every layer
that executes engine points — the batch runner, the sweep driver, the
fabric workers and the serving layer alike.  Promotion buys three things
the old private dict could not provide:

* **Thread safety.**  The in-memory tier is guarded by one lock, so a
  multi-threaded caller (the service handles each client on its own
  thread) never sees a torn read or loses a write.  The on-disk tier was
  already process-safe — atomic ``tmp + replace`` writes beside lock-free
  reads — and stays that way: readers of other processes observe either
  the old entry or the new one, never a partial file.
* **Request coalescing.**  :meth:`get_or_compute` registers in-flight
  computations, so N concurrent requests for the same key perform exactly
  one engine execution: one *leader* computes while the other callers
  park on an event and read the leader's payload when it lands.  If the
  leader fails, waiters retry from the top (one may become the next
  leader) — an error never caches and never strands a waiter.
* **One instrumentation point.**  Hits (memory or disk), misses
  (computed), coalesced waits, cumulative compute/hit-wait latency and
  the in-flight gauge are counted here, so runner ``stats()``, sweep
  progress lines and the service's ``/stats`` snapshot all report from
  the same counters.

The store never deserialises payloads — it deals in the JSON dicts the
runner caches — so it has no dependency on the engine or metrics layers
and sits below all of them.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

#: The cache kinds (subdirectories of the disk tier) the runner uses.
REPORT_KINDS = ("sim", "baseline")


class _Inflight:
    """One in-flight computation: waiters park on the event."""

    __slots__ = ("event", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: dict | None = None


class ReportStore:
    """Concurrent-safe two-tier (memory + optional disk) report store.

    Args:
        cache_dir: directory for the on-disk tier; ``None`` keeps results
            in memory only (one process lifetime).
        kinds: cache-kind subdirectories to create under ``cache_dir``.
        clock: injectable monotonic clock for latency accounting (tests).
    """

    def __init__(self, *, cache_dir: str | os.PathLike | None = None,
                 kinds: tuple[str, ...] = REPORT_KINDS,
                 clock=time.perf_counter) -> None:
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._clock = clock
        self._lock = threading.Lock()
        self._memory: dict[str, dict] = {}
        self._inflight: dict[str, _Inflight] = {}
        self._hits = 0
        self._misses = 0
        self._coalesced = 0
        self._compute_seconds = 0.0
        self._coalesced_wait_seconds = 0.0
        if self._cache_dir is not None:
            for kind in kinds:
                (self._cache_dir / kind).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def cache_dir(self) -> Path | None:
        return self._cache_dir

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def coalesced(self) -> int:
        with self._lock:
            return self._coalesced

    # ------------------------------------------------------------------
    # The two tiers
    # ------------------------------------------------------------------
    def _disk_path(self, key: str, kind: str) -> Path | None:
        if self._cache_dir is None:
            return None
        return self._cache_dir / kind / f"{key}.json"

    def load(self, key: str, kind: str) -> dict | None:
        """Fetch a payload from memory, then disk; ``None`` on a miss.

        A pure probe: counts nothing (batch callers account for whole
        batches through :meth:`record_batch`; request callers go through
        :meth:`get_or_compute`, which counts per outcome).  A disk entry
        read by this process is promoted into the memory tier.
        """
        with self._lock:
            payload = self._memory.get(key)
        if payload is not None:
            return payload
        path = self._disk_path(key, kind)
        if path is None or not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # corrupt/concurrent write; treat as a miss
        with self._lock:
            self._memory.setdefault(key, payload)
        return payload

    def store(self, key: str, payload: dict, kind: str) -> None:
        """Insert a payload into both tiers (disk write is best-effort).

        The disk write goes through a per-process temporary file renamed
        into place — atomic on POSIX, so concurrent writers race safely
        and readers in other processes never observe a partial entry.
        """
        with self._lock:
            self._memory[key] = payload
        path = self._disk_path(key, kind)
        if path is None:
            return
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload))
            tmp.replace(path)
        except OSError:
            pass  # cache is best-effort

    # ------------------------------------------------------------------
    # Coalescing fetch-or-compute
    # ------------------------------------------------------------------
    def get_or_compute(self, key: str, kind: str, compute
                       ) -> tuple[dict, str]:
        """Fetch ``key`` or run ``compute`` exactly once across threads.

        Returns ``(payload, outcome)`` where the outcome is ``"hit"``
        (either tier already held the entry), ``"coalesced"`` (another
        thread was computing it; this caller waited for that result), or
        ``"computed"`` (this caller was the leader and ran ``compute``).

        Exceptions from ``compute`` propagate to the leader and are never
        cached; parked waiters then retry from the top, so a transient
        failure costs one extra attempt rather than poisoning the key.
        """
        while True:
            with self._lock:
                payload = self._memory.get(key)
                if payload is not None:
                    self._hits += 1
                    return payload, "hit"
                entry = self._inflight.get(key)
                if entry is None:
                    entry = _Inflight()
                    self._inflight[key] = entry
                    leader = True
                else:
                    leader = False
            if not leader:
                started = self._clock()
                entry.event.wait()
                if entry.payload is None:
                    continue  # leader failed; retry (maybe as leader)
                with self._lock:
                    self._coalesced += 1
                    self._coalesced_wait_seconds += self._clock() - started
                return entry.payload, "coalesced"
            try:
                payload = self.load(key, kind)
                if payload is not None:
                    outcome = "hit"
                    with self._lock:
                        self._hits += 1
                else:
                    outcome = "computed"
                    started = self._clock()
                    payload = compute()
                    elapsed = self._clock() - started
                    self.store(key, payload, kind)
                    with self._lock:
                        self._misses += 1
                        self._compute_seconds += elapsed
            except BaseException:
                with self._lock:
                    del self._inflight[key]
                entry.event.set()  # payload stays None: waiters retry
                raise
            with self._lock:
                entry.payload = payload
                del self._inflight[key]
            entry.event.set()
            return payload, outcome

    # ------------------------------------------------------------------
    # Batch accounting and snapshots
    # ------------------------------------------------------------------
    def record_batch(self, *, hits: int = 0, misses: int = 0,
                     compute_seconds: float = 0.0) -> None:
        """Account a batch executed outside :meth:`get_or_compute`.

        ``run_engine_many`` probes and fans out whole batches itself (its
        misses run in worker *processes*); it reports the totals here so
        every execution path shares one set of counters.
        """
        with self._lock:
            self._hits += hits
            self._misses += misses
            self._compute_seconds += compute_seconds

    def stats(self) -> dict:
        """Snapshot of the store's counters and gauges (JSON-ready)."""
        with self._lock:
            hits, misses = self._hits, self._misses
            lookups = hits + misses + self._coalesced
            return {
                "hits": hits,
                "misses": misses,
                "coalesced": self._coalesced,
                "hit_rate": (hits + self._coalesced) / lookups if lookups
                else 0.0,
                "compute_seconds": self._compute_seconds,
                "coalesced_wait_seconds": self._coalesced_wait_seconds,
                "inflight": len(self._inflight),
                "entries": len(self._memory),
            }
