"""CLI for the SpGEMM service: serve, request, and bench.

``serve`` starts the long-lived service on an authenticated TCP socket
(the fabric's transport).  The authkey comes from ``REPRO_SERVE_AUTHKEY``
when set (so a supervisor can share it with clients), otherwise a fresh
one is generated and printed.  SIGTERM/SIGINT trigger a graceful drain:
in-flight requests finish, new ones are rejected with the 503 payload,
and the final metrics snapshot is flushed to ``--metrics-out``::

    REPRO_SERVE_AUTHKEY=$(python -c 'import os; print(os.urandom(16).hex())')
    export REPRO_SERVE_AUTHKEY
    python -m repro.serve serve --workers 4 --metrics-out SERVE_metrics.json

``request`` fires one request from another process::

    python -m repro.serve request --address 127.0.0.1:40123 \\
        --engine sparch --scenario smoke/wiki-Vote@120

``bench`` drives a Zipf-skewed synthetic traffic mix — against a served
address, or ``--inline`` against an in-process service (no socket, the
reduced-scale load smoke CI runs) — and reports client-side latency
percentiles, throughput and the server's stats snapshot::

    python -m repro.serve bench --inline --corpus smoke --requests 2000 \\
        --clients 16 --skew 1.2 --out SERVE_metrics.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.experiments.runner import ExperimentRunner
from repro.fabric.transport import authkey_from_env, authkey_to_env, \
    connect_object, generate_authkey, parse_address, serve_object
from repro.serve import traffic as traffic_mod
from repro.serve.service import EXPOSED_SERVICE, SERVE_AUTHKEY_ENV, \
    ServeOptions, SpGEMMService, _latency_summary


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="SpGEMM-as-a-service over the engine registry",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run the service on an authenticated TCP socket")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind host (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default 0: ephemeral)")
    serve.add_argument("--workers", type=int, default=4,
                       help="bounded worker-pool width (default 4)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="cold requests allowed to wait for a worker "
                            "before 503 rejection (default 64)")
    serve.add_argument("--cache-dir", default=None,
                       help="shared on-disk report store (serves results "
                            "any sweep/experiment wrote there)")
    serve.add_argument("--metrics-out", default=None,
                       help="flush the final stats snapshot here on drain")
    serve.add_argument("--address-file", default=None,
                       help="write the bound HOST:PORT here once listening "
                            "(lets scripts discover an ephemeral port)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to wait for in-flight requests on "
                            "shutdown (default 30)")
    serve.add_argument("--debug-delay", action="store_true",
                       help="honour request 'delay' fields (test/chaos aid)")

    request = commands.add_parser(
        "request", help="fire one request at a served address")
    request.add_argument("--address", required=True,
                         help="service HOST:PORT")
    request.add_argument("--engine", required=True,
                         help="engine registry name (sparch, mkl, ...)")
    request.add_argument("--scenario", required=True,
                         help="scenario reference, corpus/name "
                              "(e.g. smoke/wiki-Vote@120)")
    request.add_argument("--config", action="append", default=[],
                         metavar="FIELD=VALUE",
                         help="SpArchConfig override (repeatable; values "
                              "parsed as JSON, falling back to strings)")
    request.add_argument("--full", action="store_true",
                         help="include the full cost report in the output")

    bench = commands.add_parser(
        "bench", help="drive Zipf-skewed synthetic traffic and measure")
    target = bench.add_mutually_exclusive_group(required=True)
    target.add_argument("--address", default=None,
                        help="bench a served HOST:PORT over the socket")
    target.add_argument("--inline", action="store_true",
                        help="bench an in-process service (no socket)")
    bench.add_argument("--corpus", default="smoke",
                       help="corpus registry id (default smoke)")
    bench.add_argument("--engines", default="sparch,mkl,heap",
                       help="comma-separated engine names "
                            "(default sparch,mkl,heap)")
    bench.add_argument("--requests", type=int, default=1000,
                       help="requests to fire (default 1000)")
    bench.add_argument("--clients", type=int, default=16,
                       help="concurrent client threads (default 16)")
    bench.add_argument("--skew", type=float, default=1.1,
                       help="Zipf exponent of the traffic mix (default 1.1)")
    bench.add_argument("--seed", type=int, default=0,
                       help="traffic RNG seed (default 0)")
    bench.add_argument("--max-rows", type=int, default=None,
                       help="cap corpus scenario dimensions (smoke runs)")
    bench.add_argument("--no-warm", action="store_true",
                       help="skip priming every population point first "
                            "(measures the cold mix)")
    bench.add_argument("--out", default=None,
                       help="write the combined metrics JSON here")
    bench.add_argument("--workers", type=int, default=4,
                       help="inline mode: service worker-pool width")
    bench.add_argument("--queue-limit", type=int, default=256,
                       help="inline mode: service queue limit")
    bench.add_argument("--cache-dir", default=None,
                       help="inline mode: service report-store directory")
    return parser


def _authkey() -> tuple[bytes, bool]:
    """The service authkey from the environment, or a fresh one."""
    if os.environ.get(SERVE_AUTHKEY_ENV):
        return authkey_from_env(variable=SERVE_AUTHKEY_ENV), False
    return generate_authkey(), True


def _connect(address: str):
    return connect_object(
        parse_address(address),
        authkey=authkey_from_env(variable=SERVE_AUTHKEY_ENV),
        exposed=EXPOSED_SERVICE)


# ----------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(cache_dir=args.cache_dir)
    service = SpGEMMService(runner=runner, options=ServeOptions(
        workers=args.workers,
        queue_limit=args.queue_limit,
        debug_delay=args.debug_delay,
        metrics_path=args.metrics_out,
    ))
    authkey, generated = _authkey()
    if generated:
        print(f"[serve] {SERVE_AUTHKEY_ENV}={authkey_to_env(authkey)}")
    handle = serve_object(service, address=(args.host, args.port),
                          authkey=authkey, exposed=EXPOSED_SERVICE,
                          thread_name="serve-listener")
    host, port = handle.address
    print(f"[serve] listening on {host}:{port}", flush=True)
    if args.address_file:
        Path(args.address_file).write_text(f"{host}:{port}\n")

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()

    print("[serve] draining in-flight requests ...", flush=True)
    snapshot = service.shutdown(timeout=args.drain_timeout)
    handle.stop()
    facts = snapshot["service"]
    print(f"[serve] drained={facts['drained']} "
          f"requests={facts['requests']} ok={facts['ok']} "
          f"rejected={facts['rejected']} errors={facts['errors']}")
    if args.metrics_out:
        print(f"[serve] metrics flushed to {args.metrics_out}")
    return 0


def _cmd_request(args: argparse.Namespace) -> int:
    overrides = {}
    for text in args.config:
        field, separator, value = text.partition("=")
        if not separator or not field:
            raise SystemExit(f"--config expects FIELD=VALUE, got {text!r}")
        try:
            overrides[field] = json.loads(value)
        except ValueError:
            overrides[field] = value
    payload: dict = {"engine": args.engine, "scenario": args.scenario}
    if overrides:
        payload["config"] = overrides
    if args.full:
        payload["full_report"] = True
    response = _connect(args.address).request(payload)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("status") == "ok" else 1


# ----------------------------------------------------------------------
def run_traffic(request_fn, spec: traffic_mod.TrafficSpec, *, count: int,
                clients: int, warm: bool = True,
                clock=time.perf_counter) -> dict:
    """Fire a traffic mix through ``request_fn`` and measure client-side.

    Shared by ``bench`` and the load tests: warms every population point
    once (unless ``warm`` is false), then replays the spec's first
    ``count`` requests from ``clients`` concurrent threads, timing each
    round trip.

    Returns a JSON-ready summary: status/outcome counts, throughput and a
    latency percentile block.
    """
    if clients < 1:
        raise ValueError(f"clients must be positive, got {clients}")
    requests = traffic_mod.generate(spec, count)
    warmed = 0
    if warm:
        for payload in spec.population():
            response = request_fn(payload)
            if response.get("status") != "ok":
                raise RuntimeError(
                    f"warm-up request failed: {response}")
            warmed += 1

    statuses: Counter[str] = Counter()
    outcomes: Counter[str] = Counter()
    latencies: list[float] = []
    tally = threading.Lock()

    def fire(payload: dict) -> None:
        started = clock()
        response = request_fn(payload)
        elapsed = clock() - started
        with tally:
            statuses[response.get("status", "error")] += 1
            if "outcome" in response:
                outcomes[response["outcome"]] += 1
            latencies.append(elapsed)

    started = clock()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        list(pool.map(fire, requests))
    wall = clock() - started

    served = statuses.get("ok", 0)
    return {
        "requests": count,
        "clients": clients,
        "warmed": warmed,
        "wall_seconds": wall,
        "throughput_rps": count / wall if wall > 0 else 0.0,
        "statuses": dict(statuses),
        "outcomes": dict(outcomes),
        "ok": served,
        "latency": _latency_summary(sorted(latencies)),
        "traffic": {
            "corpus": spec.corpus,
            "engines": list(spec.engines),
            "skew": spec.skew,
            "seed": spec.seed,
            "max_rows": spec.max_rows,
        },
    }


def _cmd_bench(args: argparse.Namespace) -> int:
    spec = traffic_mod.TrafficSpec(
        corpus=args.corpus,
        engines=tuple(name.strip() for name in args.engines.split(",")
                      if name.strip()),
        skew=args.skew,
        seed=args.seed,
        max_rows=args.max_rows,
    )
    if args.inline:
        service = SpGEMMService(
            runner=ExperimentRunner(cache_dir=args.cache_dir),
            options=ServeOptions(workers=args.workers,
                                 queue_limit=args.queue_limit))
        request_fn, stats_fn = service.request, service.stats
    else:
        proxy = _connect(args.address)
        request_fn, stats_fn = proxy.request, proxy.stats

    client = run_traffic(request_fn, spec, count=args.requests,
                         clients=args.clients, warm=not args.no_warm)
    combined = {"schema": 1, "client": client, "server": stats_fn()}
    latency = client["latency"]
    runner_stats = combined["server"]["runner"]
    print(f"[bench] {client['requests']} requests x {client['clients']} "
          f"clients: {client['throughput_rps']:.0f} req/s, "
          f"p50 {latency['p50_ms']:.2f} ms, p99 {latency['p99_ms']:.2f} ms, "
          f"store hit rate {runner_stats['hit_rate'] * 100:.1f}%")
    if args.out:
        Path(args.out).write_text(
            json.dumps(combined, indent=2, sort_keys=True) + "\n")
        print(f"[bench] metrics written to {args.out}")
    return 0 if client["ok"] == client["requests"] else 1


def main(argv: list[str] | None = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "serve":
        return _cmd_serve(arguments)
    if arguments.command == "request":
        return _cmd_request(arguments)
    return _cmd_bench(arguments)


if __name__ == "__main__":
    sys.exit(main())
