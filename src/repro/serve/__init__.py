"""SpGEMM-as-a-service: multi-tenant serving over the engine registry.

The batch stack (experiments, sweeps, fabric) answers "run this grid";
``repro.serve`` answers *traffic*: a long-lived service that accepts
``{engine, scenario, config}`` requests, routes them through a bounded
worker pool with admission control and backpressure, and answers repeat
requests straight from the shared :class:`~repro.serve.store.ReportStore`
— the runner's memo promoted to a concurrent-safe, instrumented result
store with request coalescing.

Modules:

* :mod:`repro.serve.store` — the shared report store (also used by
  :class:`~repro.experiments.runner.ExperimentRunner` internally).
* :mod:`repro.serve.service` — :class:`SpGEMMService`: admission
  control, coalesced execution, metrics, graceful drain.
* :mod:`repro.serve.traffic` — deterministic Zipf-skewed synthetic
  traffic over registered corpus scenarios.
* ``python -m repro.serve`` — ``serve`` / ``request`` / ``bench`` CLI.

``ReportStore`` is imported eagerly (it has no dependency on the engine
layers); the service and traffic symbols resolve lazily so that
``repro.experiments.runner`` can import the store without pulling the
service stack — which imports the runner — back in.
"""

from __future__ import annotations

from repro.serve.store import ReportStore

__all__ = ["ReportStore", "SpGEMMService", "ServeOptions", "TrafficSpec"]

#: Lazily resolved exports: symbol -> defining submodule.
_LAZY = {
    "SpGEMMService": "repro.serve.service",
    "ServeOptions": "repro.serve.service",
    "TrafficSpec": "repro.serve.traffic",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
