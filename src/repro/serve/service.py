"""The SpGEMM service: admission control, coalesced execution, drain.

:class:`SpGEMMService` is the long-lived, multi-tenant front end over the
engine registry.  One request is ``{engine, scenario, config}`` — an
engine registry name, a scenario reference (``"corpus/name"`` into the
corpus registry, or an inline recipe dict), and optional SpArch config
overrides — and resolves to the same content address the batch stack
uses: :meth:`~repro.experiments.runner.ExperimentRunner.point_key` over
the recipe's operand fingerprint.  That shared address is what makes the
service a cache front end for the whole system: anything a sweep, a
fabric fleet or a figure harness already computed into the shared
:class:`~repro.serve.store.ReportStore` is served without re-simulation,
and vice versa.

The request path, in order:

1. **Parse/resolve** — unknown engines, malformed scenario references and
   bad config overrides are answered with a ``400``-style error payload.
2. **Fast path** — a store probe; a warm point is answered without
   touching the worker pool (and without ever building its operand).
3. **Admission control** — cold points need a worker slot.  If more than
   ``queue_limit`` requests are already waiting for one, the request is
   rejected with an explicit ``503``-style payload rather than queued
   without bound; below the cap, the request blocks on the bounded
   semaphore — that blocking *is* the backpressure a transport client
   feels.
4. **Coalesced execution** — the store's
   :meth:`~repro.serve.store.ReportStore.get_or_compute` guarantees N
   concurrent identical requests run the engine exactly once; followers
   wait on the leader's result (holding their slot, which bounds the
   total work admitted, not the number of executions).

Every transition is counted: request totals, per-engine counts,
hit/coalesced/computed outcomes, rejections, a bounded window of request
latencies (p50/p95/p99), and queue/inflight gauges — snapshotted by
:meth:`SpGEMMService.stats` as one JSON-ready payload.

Shutdown is graceful by construction: :meth:`SpGEMMService.shutdown`
flips the service into draining (new requests get the ``503`` payload),
waits for in-flight requests to finish, flushes a final metrics snapshot
to ``metrics_path``, and returns it.  The CLI wires SIGTERM/SIGINT to
exactly this path; it is deliberately *not* exposed over the socket
transport, so no client can drain a shared service.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from collections import Counter, OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import SpArchConfig
from repro.corpus.registry import list_corpora, resolve_scenario
from repro.corpus.spec import Scenario, scenario_fingerprint
from repro.engines.base import Engine
from repro.engines.registry import create_engine, get_engine_entry, \
    list_engines
from repro.experiments.runner import ExperimentRunner
from repro.formats.csr import CSRMatrix

#: RPC methods a serve client may call (see ``repro.fabric.transport``).
#: ``shutdown`` is intentionally absent: drains are signal-driven and
#: server-side only.
EXPOSED_SERVICE = ("request", "stats", "describe", "ping")

#: Environment variable carrying the hex-encoded authkey to serve clients.
SERVE_AUTHKEY_ENV = "REPRO_SERVE_AUTHKEY"

#: Keys a request payload may carry.
_REQUEST_KEYS = frozenset({"engine", "scenario", "config", "full_report",
                           "delay"})


class RequestError(ValueError):
    """A malformed request — answered with a ``400``-style payload."""


class ServiceUnavailable(RuntimeError):
    """Admission refused — answered with a ``503``-style payload."""


@dataclass(frozen=True)
class ServeOptions:
    """Service sizing and behaviour knobs.

    Attributes:
        workers: bounded worker-pool width — cold points executing (or
            coalescing on an executing leader) at once.
        queue_limit: cold requests allowed to *wait* for a worker slot;
            one more is rejected with the ``503`` payload.
        matrix_cache_entries: operand LRU size — scenarios kept
            materialised between cold requests.
        latency_window: request latencies kept for percentile snapshots.
        debug_delay: honour a request's ``delay`` field by sleeping that
            many seconds inside the (coalesced) compute path — a test and
            chaos aid, off by default.
        metrics_path: where :meth:`SpGEMMService.shutdown` flushes the
            final stats snapshot (``None`` skips the flush).
    """

    workers: int = 4
    queue_limit: int = 64
    matrix_cache_entries: int = 4
    latency_window: int = 8192
    debug_delay: bool = False
    metrics_path: str | os.PathLike | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.queue_limit < 0:
            raise ValueError(
                f"queue_limit must be non-negative, got {self.queue_limit}")
        if self.matrix_cache_entries < 1:
            raise ValueError(
                f"matrix_cache_entries must be positive, got "
                f"{self.matrix_cache_entries}")
        if self.latency_window < 1:
            raise ValueError(
                f"latency_window must be positive, got {self.latency_window}")


@dataclass(frozen=True)
class _ParsedRequest:
    """A validated request, resolved against the registries."""

    engine_name: str
    scenario: Scenario
    config_overrides: tuple[tuple[str, object], ...]
    full_report: bool
    delay: float


def _latency_summary(seconds_sorted: list[float]) -> dict:
    """Percentile summary (milliseconds) of a sorted latency window."""
    count = len(seconds_sorted)
    if count == 0:
        return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0,
                "p99_ms": 0.0, "max_ms": 0.0}

    def at(quantile: float) -> float:
        index = min(count - 1, int(quantile * count))
        return seconds_sorted[index] * 1000.0

    return {
        "count": count,
        "mean_ms": sum(seconds_sorted) / count * 1000.0,
        "p50_ms": at(0.50),
        "p95_ms": at(0.95),
        "p99_ms": at(0.99),
        "max_ms": seconds_sorted[-1] * 1000.0,
    }


class SpGEMMService:
    """Multi-tenant SpGEMM serving over the engine registry.

    Args:
        runner: the experiment runner whose shared store answers repeat
            requests; a fresh in-memory one by default.  Point a
            ``cache_dir`` runner at a sweep's cache to serve its results.
        options: sizing knobs (see :class:`ServeOptions`).
        clock: injectable latency clock (tests).
    """

    def __init__(self, *, runner: ExperimentRunner | None = None,
                 options: ServeOptions | None = None,
                 clock=time.perf_counter) -> None:
        self._runner = runner if runner is not None else ExperimentRunner()
        self._options = options if options is not None else ServeOptions()
        self._clock = clock
        self._lock = threading.Lock()
        self._slots = threading.Semaphore(self._options.workers)
        self._matrix_lock = threading.Lock()
        self._matrices: OrderedDict[tuple, CSRMatrix] = OrderedDict()
        self._engine_lock = threading.Lock()
        self._engines: dict[tuple[str, str], Engine] = {}
        # Counters (all guarded by self._lock)
        self._requests = 0
        self._ok = 0
        self._rejected = 0
        self._errors = 0
        self._bad_requests = 0
        self._outcomes: Counter[str] = Counter()
        self._per_engine: Counter[str] = Counter()
        self._inflight = 0
        self._queued = 0
        self._active = 0
        self._peak_queued = 0
        self._latencies: deque[float] = deque(
            maxlen=self._options.latency_window)
        self._draining = False
        self._drained = threading.Event()
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    @property
    def runner(self) -> ExperimentRunner:
        return self._runner

    @property
    def options(self) -> ServeOptions:
        return self._options

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # ------------------------------------------------------------------
    # Request parsing and resolution
    # ------------------------------------------------------------------
    def _parse(self, payload) -> _ParsedRequest:
        if not isinstance(payload, dict):
            raise RequestError(
                f"request must be a dict, got {type(payload).__name__}")
        unknown = set(payload) - _REQUEST_KEYS
        if unknown:
            raise RequestError(
                f"unknown request fields {sorted(unknown)}; allowed: "
                f"{sorted(_REQUEST_KEYS)}")
        engine_name = payload.get("engine")
        if not isinstance(engine_name, str):
            raise RequestError("request needs an 'engine' registry name")
        try:
            entry = get_engine_entry(engine_name)
        except KeyError as exc:
            raise RequestError(str(exc.args[0])) from None
        if "scenario" not in payload:
            raise RequestError(
                "request needs a 'scenario' ('corpus/name' or recipe dict)")
        try:
            scenario = resolve_scenario(payload["scenario"])
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            raise RequestError(str(message)) from None
        overrides = payload.get("config") or {}
        if not isinstance(overrides, dict):
            raise RequestError(
                f"'config' must be a dict of SpArchConfig overrides, got "
                f"{type(overrides).__name__}")
        if overrides and entry.kind != "simulation":
            raise RequestError(
                f"engine {engine_name!r} takes no configuration; drop "
                f"'config' or use a simulation engine")
        delay = float(payload.get("delay") or 0.0)
        return _ParsedRequest(
            engine_name=engine_name,
            scenario=scenario,
            config_overrides=tuple(sorted(overrides.items())),
            full_report=bool(payload.get("full_report")),
            delay=delay,
        )

    def _engine_for(self, req: _ParsedRequest) -> Engine:
        """Build (or reuse) the engine instance serving this request."""
        memo_key = (req.engine_name,
                    json.dumps(req.config_overrides, default=str))
        with self._engine_lock:
            engine = self._engines.get(memo_key)
        if engine is not None:
            return engine
        if req.config_overrides:
            try:
                config = dataclasses.replace(SpArchConfig(),
                                             **dict(req.config_overrides))
            except (TypeError, ValueError) as exc:
                raise RequestError(f"bad config overrides: {exc}") from None
            engine = create_engine(req.engine_name, config=config)
        else:
            engine = create_engine(req.engine_name)
        with self._engine_lock:
            return self._engines.setdefault(memo_key, engine)

    def _matrix_for(self, scenario: Scenario) -> CSRMatrix:
        """The scenario's operand, through a small LRU of built matrices."""
        key = (scenario.family, scenario.params)
        with self._matrix_lock:
            matrix = self._matrices.get(key)
            if matrix is not None:
                self._matrices.move_to_end(key)
                return matrix
        matrix = scenario.build()  # outside the lock; a race builds twice
        with self._matrix_lock:
            self._matrices[key] = matrix
            self._matrices.move_to_end(key)
            while len(self._matrices) > self._options.matrix_cache_entries:
                self._matrices.popitem(last=False)
        return matrix

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        """Claim a place in the worker queue or reject with a 503."""
        with self._lock:
            if self._draining:
                raise ServiceUnavailable(
                    "draining: the service is shutting down")
            if self._queued >= self._options.queue_limit:
                raise ServiceUnavailable(
                    f"queue full: {self._queued} requests already waiting "
                    f"for a worker (queue_limit {self._options.queue_limit})")
            self._queued += 1
            self._peak_queued = max(self._peak_queued, self._queued)

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------
    def request(self, payload) -> dict:
        """Serve one request; always returns a JSON-ready response dict.

        Response statuses: ``"ok"`` (with the report summary, the point
        key and the cache ``outcome``), ``"rejected"`` (code 503:
        admission refused or draining), ``"error"`` (code 400 for
        malformed requests, 500 for engine failures).  Every response
        carries ``latency_ms``.
        """
        started = self._clock()
        try:
            req = self._parse(payload)
        except RequestError as exc:
            with self._lock:
                self._requests += 1
                self._bad_requests += 1
            return self._finish({"status": "error", "code": 400,
                                 "error": str(exc)}, started)
        with self._lock:
            self._requests += 1
            draining = self._draining
            if not draining:
                self._inflight += 1
                self._per_engine[req.engine_name] += 1
        if draining:
            with self._lock:
                self._rejected += 1
            return self._finish(
                {"status": "rejected", "code": 503,
                 "reason": "draining: the service is shutting down"},
                started)
        try:
            response = self._execute(req)
        except ServiceUnavailable as exc:
            with self._lock:
                self._rejected += 1
            response = {"status": "rejected", "code": 503,
                        "reason": str(exc)}
        except RequestError as exc:
            with self._lock:
                self._bad_requests += 1
            response = {"status": "error", "code": 400, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — relayed, never fatal
            with self._lock:
                self._errors += 1
            response = {"status": "error", "code": 500,
                        "error": f"{type(exc).__name__}: {exc}"}
        finally:
            with self._lock:
                self._inflight -= 1
                if self._draining and self._inflight == 0:
                    self._drained.set()
        return self._finish(response, started)

    def _finish(self, response: dict, started: float) -> dict:
        elapsed = self._clock() - started
        response["latency_ms"] = round(elapsed * 1000.0, 3)
        with self._lock:
            self._latencies.append(elapsed)
            if response["status"] == "ok":
                self._ok += 1
                self._outcomes[response["outcome"]] += 1
        return response

    def _execute(self, req: _ParsedRequest) -> dict:
        engine = self._engine_for(req)
        fingerprint = scenario_fingerprint(req.scenario)
        key = self._runner.point_key(engine, None, fingerprint_a=fingerprint)
        kind = "sim" if get_engine_entry(req.engine_name).kind == \
            "simulation" else "baseline"
        setup = None
        if req.delay > 0 and self._options.debug_delay:
            setup = lambda: time.sleep(req.delay)  # noqa: E731

        def run() -> tuple:
            return self._runner.run_engine_keyed(
                engine, key=key,
                matrix_supplier=lambda: self._matrix_for(req.scenario),
                setup=setup)

        if self._runner.store.load(key, kind) is not None:
            # Warm point: answered without a worker slot (the store call
            # below is a memory hit — no operand is ever built).
            report, outcome = run()
        else:
            self._admit()
            self._slots.acquire()
            with self._lock:
                self._queued -= 1
                self._active += 1
            try:
                report, outcome = run()
            finally:
                with self._lock:
                    self._active -= 1
                self._slots.release()
        response = {
            "status": "ok",
            "outcome": outcome,
            "key": key,
            "engine": req.engine_name,
            "scenario": req.scenario.name,
            "summary": report.summary(),
        }
        if req.full_report:
            response["report"] = report.to_dict()
        return response

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def ping(self) -> str:
        return "pong"

    def describe(self) -> dict:
        """Static service facts: registries served and pool sizing."""
        return {
            "engines": list_engines(),
            "corpora": list_corpora(),
            "workers": self._options.workers,
            "queue_limit": self._options.queue_limit,
            "draining": self.draining,
        }

    def stats(self) -> dict:
        """One JSON-ready snapshot of service and store counters."""
        with self._lock:
            window = sorted(self._latencies)
            service = {
                "requests": self._requests,
                "ok": self._ok,
                "rejected": self._rejected,
                "errors": self._errors,
                "bad_requests": self._bad_requests,
                "outcomes": dict(self._outcomes),
                "per_engine": dict(self._per_engine),
                "inflight": self._inflight,
                "queued": self._queued,
                "active": self._active,
                "peak_queued": self._peak_queued,
                "workers": self._options.workers,
                "queue_limit": self._options.queue_limit,
                "draining": self._draining,
                "uptime_seconds": time.monotonic() - self._started,
                "latency": _latency_summary(window),
            }
        return {"schema": 1, "service": service,
                "runner": self._runner.stats()}

    # ------------------------------------------------------------------
    # Graceful shutdown
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting: new requests get the 503 draining payload."""
        with self._lock:
            self._draining = True
            if self._inflight == 0:
                self._drained.set()

    def shutdown(self, *, timeout: float | None = None) -> dict:
        """Drain in-flight requests, flush metrics, return the snapshot.

        Args:
            timeout: seconds to wait for the drain; ``None`` waits until
                every in-flight request has finished.  The snapshot's
                ``service.drained`` records whether the drain completed.
        """
        self.begin_drain()
        drained = self._drained.wait(timeout)
        snapshot = self.stats()
        snapshot["service"]["drained"] = bool(drained)
        self.flush_metrics(snapshot)
        return snapshot

    def flush_metrics(self, snapshot: dict | None = None) -> Path | None:
        """Write a stats snapshot to ``metrics_path`` (atomic, best-effort).

        Returns the path written, or ``None`` when no path is configured.
        """
        if self._options.metrics_path is None:
            return None
        path = Path(self._options.metrics_path)
        snapshot = snapshot if snapshot is not None else self.stats()
        tmp = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)
        return path
