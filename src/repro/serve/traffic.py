"""Deterministic Zipf-skewed synthetic traffic over registered corpora.

Real SpGEMM serving traffic is heavily repeat-skewed — a few hot
(matrix, engine) points dominate while a long tail of cold points trickles
in — which is exactly the regime the shared result store and request
coalescing are built for.  :class:`TrafficSpec` models that as a Zipf
distribution over a *ranked population*: the cross product of a registered
corpus's scenarios with a set of engine registry names, in canonical
(scenario-major, then engine) order, rank 1 being the hottest.

Everything is deterministic per seed: :func:`generate` draws ranks from
``numpy``'s seeded generator, so two processes with the same spec produce
the identical request sequence — the property the traffic tests pin, and
what makes a load test reproducible enough to assert latency and hit-rate
numbers against.

:func:`empirical_skew` closes the loop: it fits the rank-frequency slope
of an observed request mix, so a property test can check that generated
traffic actually exhibits the configured skew.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.registry import get_corpus
from repro.engines.registry import get_engine_entry


@dataclass(frozen=True)
class TrafficSpec:
    """One reproducible traffic mix.

    Attributes:
        corpus: corpus registry id naming the scenario population.
        engines: engine registry names crossed with the scenarios.
        skew: Zipf exponent ``s`` — request probability of rank ``r`` is
            proportional to ``r**-s``; ``0`` is uniform traffic.
        seed: RNG seed; the request sequence is a pure function of the
            spec.
        max_rows: optional corpus scale cap (smoke runs), forwarded into
            each request's scenario recipe.
    """

    corpus: str = "smoke"
    engines: tuple[str, ...] = ("sparch", "mkl", "heap")
    skew: float = 1.1
    seed: int = 0
    max_rows: int | None = None

    def __post_init__(self) -> None:
        if not self.engines:
            raise ValueError("traffic needs at least one engine")
        if len(set(self.engines)) != len(self.engines):
            raise ValueError(f"duplicate engines in {self.engines}")
        for name in self.engines:
            get_engine_entry(name)  # raises KeyError for unknown engines
        get_corpus(self.corpus)  # raises KeyError for unknown corpora
        if self.skew < 0:
            raise ValueError(f"skew must be non-negative, got {self.skew}")
        if self.max_rows is not None and self.max_rows < 1:
            raise ValueError(
                f"max_rows must be positive, got {self.max_rows}")

    # ------------------------------------------------------------------
    def population(self) -> list[dict]:
        """The ranked request population (rank 1 first).

        Scenario-major over the corpus's canonical order, then engines in
        spec order.  Scaled scenarios are carried as inline recipes so the
        server needs no matching ``--max-rows`` convention; full-scale
        scenarios travel as compact ``"corpus/name"`` references.
        """
        corpus = get_corpus(self.corpus).scaled(self.max_rows)
        requests = []
        for scenario in corpus.scenarios:
            for engine in self.engines:
                if self.max_rows is None:
                    reference: object = f"{self.corpus}/{scenario.name}"
                else:
                    reference = scenario.to_dict()
                requests.append({"engine": engine, "scenario": reference})
        return requests

    def weights(self) -> np.ndarray:
        """Normalised Zipf weights over the population ranks."""
        return zipf_weights(len(self.population()), self.skew)


def zipf_weights(count: int, skew: float) -> np.ndarray:
    """``P(rank r) ∝ r**-skew`` over ranks ``1..count``, normalised."""
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** -float(skew)
    return weights / weights.sum()


def generate(spec: TrafficSpec, count: int) -> list[dict]:
    """The spec's first ``count`` requests — deterministic per seed.

    Each element is a fresh request payload dict (callers may annotate
    their copy freely).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    population = spec.population()
    weights = zipf_weights(len(population), spec.skew)
    rng = np.random.default_rng(spec.seed)
    ranks = rng.choice(len(population), size=count, p=weights)
    return [dict(population[rank]) for rank in ranks]


def rank_counts(spec: TrafficSpec, requests: list[dict]) -> np.ndarray:
    """How often each population rank occurs in a request list."""
    index = {}
    for rank, payload in enumerate(spec.population()):
        index[(payload["engine"], _scenario_key(payload["scenario"]))] = rank
    counts = np.zeros(len(index), dtype=np.int64)
    for payload in requests:
        counts[index[(payload["engine"],
                      _scenario_key(payload["scenario"]))]] += 1
    return counts


def _scenario_key(reference) -> object:
    """A hashable identity for a request's scenario reference."""
    if isinstance(reference, dict):
        return (reference["name"], reference["family"],
                tuple(sorted(reference["params"].items())))
    return reference


def empirical_skew(counts: np.ndarray) -> float:
    """Least-squares rank-frequency slope of an observed mix.

    Fits ``log(count) = a - s * log(rank)`` over the ranks that occurred
    at least once and returns ``s``.  For traffic drawn from
    :func:`generate`, ``s`` converges on the spec's ``skew`` as the sample
    grows — the distribution-shape half of the traffic property test.
    """
    counts = np.asarray(counts, dtype=np.float64)
    ranks = np.arange(1, len(counts) + 1, dtype=np.float64)
    observed = counts > 0
    if observed.sum() < 2:
        raise ValueError(
            "need at least two observed ranks to fit a slope")
    x = np.log(ranks[observed])
    y = np.log(counts[observed])
    slope = np.polyfit(x, y, 1)[0]
    return -float(slope)
