#!/usr/bin/env python3
"""Multi-stage SpGEMM workloads through the compiler front end, end to end.

The ``repro.workloads`` subsystem expresses an application as a declarative
stage graph: you write a tiny spec (the expression language below, or a
JSON/YAML stage graph), the compiler parses it into a typed IR, checks
shapes and sparsity structure with stage-named diagnostics, schedules it
deterministically, and lowers it onto the pipeline executor — SpGEMM
stages on the SpArch simulator (or any comparison baseline), host stages
on scipy, every stage costed.

This example authors a *custom* workload from scratch — a co-citation
similarity join — compiles it, runs it cold and fused, then runs the
registered ``cosine`` workload against an MKL-class CPU baseline and
demonstrates the fingerprint cache on a warm re-run.

Run with::

    python examples/workload_pipelines.py
"""

from __future__ import annotations

import time

from repro.baselines import GustavsonSpGEMM
from repro.experiments.runner import ExperimentRunner
from repro.matrices import powerlaw_matrix
from repro.utils import human_bytes
from repro.workloads import (
    PipelineBuilder,
    SpArchExecutor,
    compile_workload,
    list_workloads,
    run_workload,
)

#: A workload that exists nowhere in the registry — authored right here.
#: ``·`` chains SpGEMMs, ``'`` transposes, ``⊙`` masks; every assignment
#: becomes a named, costed stage.
CO_CITATION = """
    workload co_citation
    input A square
    param threshold = 0.05
    adjacency = simple_graph(A)
    incoming = adjacency'
    cocited = incoming · adjacency
    scaled = normalize_rows(cocited)
    strong = prune(scaled, threshold=threshold)
    annotate strong_pairs = off_diagonal_pairs(strong)
    output strong
"""


def describe(result) -> None:
    """Print the per-stage cost table of one workload run."""
    print(f"backend: {result.backend}")
    print(f"{'stage':>14}  {'kind':>24}  {'nnz':>8}  {'runtime':>10}  "
          f"{'host':>10}  {'DRAM':>10}")
    for stage in result.stages:
        print(f"{stage.name:>14}  {stage.kind:>24}  {stage.output_nnz:>8}  "
              f"{stage.runtime_seconds * 1e6:>8.1f}µs  "
              f"{stage.host_seconds * 1e6:>8.1f}µs  "
              f"{human_bytes(stage.dram_bytes):>10}")
    print(f"{'TOTAL':>14}  {'':>24}  {'':>8}  "
          f"{result.total_runtime_seconds * 1e6:>8.1f}µs  "
          f"{result.total_host_seconds * 1e6:>8.1f}µs  "
          f"{human_bytes(result.total_dram_bytes):>10}")


def main() -> None:
    print("registered workloads:", ", ".join(list_workloads()))

    # --- 1. Author and compile a custom spec -----------------------------
    workload = compile_workload(CO_CITATION)
    print(f"\n== custom spec '{workload.name}' "
          f"({len(workload.order)} scheduled nodes) ==")

    matrix = powerlaw_matrix(1500, 8.0, seed=7)
    runner = ExperimentRunner()

    def run_compiled(*, fuse: bool):
        pipeline = PipelineBuilder(SpArchExecutor(runner=runner),
                                   inputs={"A": matrix})
        output = workload.run(pipeline, params={"threshold": 0.1}, fuse=fuse)
        return pipeline.result(workload.name, output)

    plain = run_compiled(fuse=False)
    describe(plain)
    print(f"strong co-citation pairs: "
          f"{int(plain.annotations['strong_pairs'])}")

    # --- 2. Host-op fusion: same output, fewer host stages ---------------
    fused = run_compiled(fuse=True)
    print(f"\nfused run: {len(plain.stages)} stages -> {len(fused.stages)} "
          f"(host {len(plain.host_stages)} -> {len(fused.host_stages)}), "
          "identical output:",
          (fused.output.data == plain.output.data).all())

    # --- 3. A registered workload on SpArch vs an MKL-class baseline -----
    print("\n== registered 'cosine' workload, SpArch vs CPU baseline ==")
    start = time.perf_counter()
    on_sparch = run_workload("cosine", matrix, runner=runner, threshold=0.3)
    cold_seconds = time.perf_counter() - start
    on_mkl = run_workload("cosine", matrix, baseline=GustavsonSpGEMM(),
                          runner=runner, threshold=0.3)
    speedup = on_mkl.total_runtime_seconds / on_sparch.total_runtime_seconds
    saving = on_mkl.total_energy_joules / on_sparch.total_energy_joules
    print(f"modelled CPU runtime  : {on_mkl.total_runtime_seconds * 1e6:.1f} µs")
    print(f"accelerator speedup   : {speedup:.1f}x")
    print(f"energy saving         : {saving:.1f}x")

    # --- 4. Warm re-run: SpGEMM stages replay from the fingerprint cache -
    start = time.perf_counter()
    warm = run_workload("cosine", matrix, runner=runner, threshold=0.3)
    warm_seconds = time.perf_counter() - start
    assert warm == on_sparch
    print(f"\ncached re-run         : {warm_seconds * 1e3:.1f} ms "
          f"(cold {cold_seconds * 1e3:.1f} ms, "
          f"{cold_seconds / warm_seconds:.1f}x faster)")


if __name__ == "__main__":
    main()
