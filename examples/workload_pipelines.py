#!/usr/bin/env python3
"""Multi-stage SpGEMM workload pipelines — cosine similarity join, end to end.

The ``repro.workloads`` subsystem expresses an application as a DAG of
named stages: SpGEMM stages run on the SpArch simulator (or any comparison
baseline), element-wise/normalise/prune/mask stages run on the host, and
every stage records its cost.  This example runs the registered ``cosine``
workload — L2-normalise rows, multiply by the transpose on the
accelerator, keep pairs above a similarity threshold — and compares the
end-to-end pipeline cost of SpArch against an MKL-class CPU baseline.

Every SpGEMM stage is memoised through the experiment runner's fingerprint
cache, which the second (warm) run at the end demonstrates.

Run with::

    python examples/workload_pipelines.py
"""

from __future__ import annotations

import time

from repro.baselines import GustavsonSpGEMM
from repro.experiments.runner import ExperimentRunner
from repro.matrices import powerlaw_matrix
from repro.utils import human_bytes
from repro.workloads import get_workload, list_workloads, run_workload


def describe(result) -> None:
    """Print the per-stage cost table of one workload run."""
    print(f"backend: {result.backend}")
    print(f"{'stage':>14}  {'kind':>16}  {'nnz':>8}  {'runtime':>10}  "
          f"{'DRAM':>10}")
    for stage in result.stages:
        print(f"{stage.name:>14}  {stage.kind:>16}  {stage.output_nnz:>8}  "
              f"{stage.runtime_seconds * 1e6:>8.1f}µs  "
              f"{human_bytes(stage.dram_bytes):>10}")
    print(f"{'TOTAL':>14}  {'':>16}  {'':>8}  "
          f"{result.total_runtime_seconds * 1e6:>8.1f}µs  "
          f"{human_bytes(result.total_dram_bytes):>10}")
    print(f"similar pairs found: {int(result.annotations['similar_pairs'])}")


def main() -> None:
    print("registered workloads:", ", ".join(list_workloads()))
    spec = get_workload("cosine")
    print(f"\n== {spec.title} ==\n{spec.description}\n")

    # Item/feature matrix: rows are items, columns are features.
    matrix = powerlaw_matrix(1500, 8.0, seed=7)
    runner = ExperimentRunner()

    start = time.perf_counter()
    on_sparch = run_workload("cosine", matrix, runner=runner, threshold=0.3)
    cold_seconds = time.perf_counter() - start
    describe(on_sparch)

    print("\n--- same pipeline on an MKL-class CPU baseline ---")
    on_mkl = run_workload("cosine", matrix, baseline=GustavsonSpGEMM(),
                          runner=runner, threshold=0.3)
    speedup = on_mkl.total_runtime_seconds / on_sparch.total_runtime_seconds
    saving = on_mkl.total_energy_joules / on_sparch.total_energy_joules
    print(f"modelled runtime      : {on_mkl.total_runtime_seconds * 1e6:.1f} µs")
    print(f"accelerator speedup   : {speedup:.1f}x")
    print(f"energy saving         : {saving:.1f}x")

    # Warm re-run: every SpGEMM stage replays from the fingerprint cache.
    start = time.perf_counter()
    warm = run_workload("cosine", matrix, runner=runner, threshold=0.3)
    warm_seconds = time.perf_counter() - start
    assert warm == on_sparch
    print(f"\ncached re-run         : {warm_seconds * 1e3:.1f} ms "
          f"(cold {cold_seconds * 1e3:.1f} ms, "
          f"{cold_seconds / warm_seconds:.1f}x faster)")


if __name__ == "__main__":
    main()
