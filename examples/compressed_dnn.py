#!/usr/bin/env python3
"""Compressed (pruned) neural network inference as a chain of SpGEMMs.

The paper's introduction motivates SpGEMM with compressed deep neural
networks (Deep Compression prunes ~90 % of the weights, and activations are
sparse after ReLU).  A pruned fully-connected layer applied to a batch of
sparse activations is exactly ``W · X`` with both operands sparse — the
kernel SpArch accelerates.

This example builds a small pruned MLP (three layers), runs a sparse batch
through it layer by layer on the simulated accelerator, verifies the result
against dense numpy inference, and reports the per-layer accelerator cost.

Run with::

    python examples/compressed_dnn.py
"""

from __future__ import annotations

import numpy as np

from repro import SpArch, SpArchConfig
from repro.analysis import EnergyModel
from repro.formats import CSRMatrix
from repro.utils import human_bytes

#: Layer sizes of the toy MLP (output × input, like a weight matrix).
LAYER_SHAPES = [(1024, 784), (512, 1024), (256, 512)]

#: Fraction of weights kept after pruning (Deep Compression keeps ~10 %).
WEIGHT_DENSITY = 0.08

#: Fraction of activations that stay nonzero after ReLU.
ACTIVATION_DENSITY = 0.25

BATCH_SIZE = 256


def prune_dense(matrix: np.ndarray, density: float,
                rng: np.random.Generator) -> np.ndarray:
    """Keep the largest-magnitude entries so ``density`` of them survive."""
    threshold = np.quantile(np.abs(matrix), 1.0 - density)
    pruned = np.where(np.abs(matrix) >= threshold, matrix, 0.0)
    return pruned


def build_pruned_mlp(rng: np.random.Generator) -> list[CSRMatrix]:
    """Random weights, magnitude-pruned to ``WEIGHT_DENSITY``."""
    layers = []
    for out_features, in_features in LAYER_SHAPES:
        dense = rng.standard_normal((out_features, in_features))
        layers.append(CSRMatrix.from_dense(prune_dense(dense, WEIGHT_DENSITY, rng)))
    return layers


def sparse_batch(rng: np.random.Generator) -> CSRMatrix:
    """A batch of sparse input activations, one column per sample."""
    dense = rng.standard_normal((LAYER_SHAPES[0][1], BATCH_SIZE))
    mask = rng.random(dense.shape) < ACTIVATION_DENSITY
    return CSRMatrix.from_dense(np.where(mask, np.abs(dense), 0.0))


def relu_sparsify(matrix: CSRMatrix) -> CSRMatrix:
    """ReLU: negative activations become (structural) zeros."""
    dense = matrix.to_dense()
    return CSRMatrix.from_dense(np.maximum(dense, 0.0))


def main() -> None:
    rng = np.random.default_rng(1234)
    weights = build_pruned_mlp(rng)
    activations = sparse_batch(rng)
    print(f"batch: {BATCH_SIZE} samples, input density "
          f"{activations.density:.1%}; weights pruned to {WEIGHT_DENSITY:.0%}")

    accelerator = SpArch(SpArchConfig())
    energy_model = EnergyModel()
    reference = activations.to_dense()

    total_cycles = 0
    total_energy = 0.0
    total_bytes = 0
    for index, weight in enumerate(weights):
        result = accelerator.multiply(weight, activations)
        # Verify against dense inference before applying ReLU.
        reference = weight.to_dense() @ reference
        np.testing.assert_allclose(result.matrix.to_dense(), reference,
                                   rtol=1e-9, atol=1e-9)

        stats = result.stats
        energy = energy_model.total_energy(stats)
        total_cycles += stats.cycles
        total_energy += energy
        total_bytes += stats.dram_bytes
        print(f"layer {index}: {weight.shape[0]:>4}x{weight.shape[1]:<4} "
              f"W nnz={weight.nnz:>6}  X nnz={activations.nnz:>6}  "
              f"out nnz={result.nnz:>7}  "
              f"{stats.gflops:5.2f} GFLOP/s  "
              f"{human_bytes(stats.dram_bytes):>10}  {energy * 1e6:6.1f} µJ")

        # ReLU between layers re-sparsifies the activations.
        activations = relu_sparsify(result.matrix)
        reference = np.maximum(reference, 0.0)

    runtime_us = total_cycles / SpArchConfig().clock_hz * 1e6
    print("\n--- whole network ---")
    print(f"total simulated time  : {runtime_us:.1f} µs per batch "
          f"({runtime_us / BATCH_SIZE * 1e3:.2f} ns per sample)")
    print(f"total DRAM traffic    : {human_bytes(total_bytes)}")
    print(f"total dynamic energy  : {total_energy * 1e6:.1f} µJ "
          f"({total_energy / BATCH_SIZE * 1e9:.2f} nJ per sample)")
    print("inference verified against dense numpy execution.")


if __name__ == "__main__":
    main()
