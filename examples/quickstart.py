#!/usr/bin/env python3
"""Quickstart: simulate one SpGEMM on SpArch and read the statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SpArch, SpArchConfig
from repro.analysis import AreaModel, EnergyModel
from repro.baselines import OuterSpaceAccelerator
from repro.matrices import load_benchmark
from repro.utils import human_bytes


def main() -> None:
    # 1. Load a workload.  The paper's 20 benchmark matrices are regenerated
    #    as synthetic proxies (no network access); `max_rows` caps the proxy
    #    dimension so the pure-Python simulation stays fast.
    matrix = load_benchmark("wiki-Vote", max_rows=1500)
    print(f"workload: wiki-Vote proxy, shape={matrix.shape}, nnz={matrix.nnz}")

    # 2. Simulate C = A · A on the Table I configuration.
    config = SpArchConfig()
    result = SpArch(config).multiply(matrix, matrix)
    stats = result.stats
    print(f"result nnz            : {result.nnz}")
    print(f"simulated cycles      : {stats.cycles:,}")
    print(f"achieved throughput   : {stats.gflops:.2f} GFLOP/s")
    print(f"DRAM traffic          : {human_bytes(stats.dram_bytes)}")
    print(f"  - partial matrices  : {human_bytes(stats.traffic.partial_matrix_bytes)}")
    print(f"  - operand reads     : {human_bytes(stats.traffic.input_bytes)}")
    print(f"prefetch buffer hits  : {stats.prefetch_hit_rate:.1%}")
    print(f"condensed columns     : {stats.condensed_columns} "
          f"(from {matrix.num_cols} original columns)")
    print(f"merge rounds          : {stats.num_merge_rounds}")

    # 3. Energy and area come from the analytical models of Table II/III.
    energy = EnergyModel()
    print(f"dynamic energy        : {energy.total_energy(stats, config) * 1e6:.1f} µJ")
    print(f"average power         : {energy.average_power(stats, config):.2f} W")
    print(f"accelerator area      : {AreaModel().total_area(config):.2f} mm²")

    # 4. Compare against the OuterSPACE baseline on the same workload.
    outerspace = OuterSpaceAccelerator().multiply(matrix, matrix)
    speedup = outerspace.runtime_seconds / stats.runtime_seconds
    traffic_saving = outerspace.traffic_bytes / stats.dram_bytes
    print(f"speedup vs OuterSPACE : {speedup:.2f}x")
    print(f"DRAM saving vs OuterSPACE: {traffic_saving:.2f}x")


if __name__ == "__main__":
    main()
