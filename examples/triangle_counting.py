#!/usr/bin/env python3
"""Triangle counting on SpArch — one of the paper's motivating applications.

Counting triangles in an undirected graph is a classic SpGEMM workload
(§I cites Azad et al.'s matrix-algebra formulation): with A the (binary)
adjacency matrix, the number of triangles is ``trace(A³) / 6``, and the
heavy kernel is the sparse product ``A · A``.

This example builds a power-law graph, counts its triangles exactly with an
explicit wedge check, then performs the same computation through the SpArch
simulator and reports the accelerator-side statistics — what the kernel
would cost on the real chip.

Run with::

    python examples/triangle_counting.py
"""

from __future__ import annotations

import numpy as np

from repro import SpArch
from repro.baselines import GustavsonSpGEMM
from repro.formats import CSRMatrix, from_scipy, to_scipy
from repro.matrices import powerlaw_matrix
from repro.utils import human_bytes


def build_undirected_graph(num_nodes: int, avg_degree: float, *,
                           seed: int = 0) -> CSRMatrix:
    """Symmetric, zero-diagonal, 0/1 adjacency matrix of a power-law graph."""
    base = to_scipy(powerlaw_matrix(num_nodes, avg_degree, seed=seed))
    symmetric = base + base.T
    symmetric.setdiag(0)
    symmetric.eliminate_zeros()
    symmetric.data[:] = 1.0
    return from_scipy(symmetric)


def count_triangles_reference(adjacency: CSRMatrix) -> int:
    """Exact triangle count via trace(A³) / 6 computed with scipy."""
    a = to_scipy(adjacency)
    a_squared = a @ a
    trace = (a_squared.multiply(a)).sum()
    return int(round(trace / 6))


def count_triangles_on_sparch(adjacency: CSRMatrix) -> tuple[int, object]:
    """Count triangles using the simulated accelerator for the SpGEMM step."""
    result = SpArch().multiply(adjacency, adjacency)
    # trace(A² ⊙ A): sum A²[i, j] over the edges (i, j) of the graph.
    a_squared = to_scipy(result.matrix)
    triangles = int(round((a_squared.multiply(to_scipy(adjacency))).sum() / 6))
    return triangles, result.stats


def main() -> None:
    graph = build_undirected_graph(2000, 6.0, seed=42)
    print(f"graph: {graph.num_rows} nodes, {graph.nnz} directed edges, "
          f"avg degree {graph.nnz / graph.num_rows:.1f}")

    expected = count_triangles_reference(graph)
    triangles, stats = count_triangles_on_sparch(graph)
    assert triangles == expected, "accelerator result disagrees with reference"
    print(f"triangles             : {triangles} (reference {expected})")

    print("\n--- SpGEMM kernel on SpArch ---")
    print(f"multiplications       : {stats.multiplications:,}")
    print(f"simulated runtime     : {stats.runtime_seconds * 1e6:.1f} µs "
          f"({stats.gflops:.2f} GFLOP/s)")
    print(f"DRAM traffic          : {human_bytes(stats.dram_bytes)}")
    print(f"prefetch hit rate     : {stats.prefetch_hit_rate:.1%}")

    # How long would the same kernel take on a desktop CPU (MKL-class)?
    mkl = GustavsonSpGEMM().multiply(graph, graph)
    print("\n--- same kernel on an MKL-class CPU ---")
    print(f"modelled runtime      : {mkl.runtime_seconds * 1e6:.1f} µs "
          f"({mkl.gflops:.2f} GFLOP/s)")
    print(f"accelerator speedup   : {mkl.runtime_seconds / stats.runtime_seconds:.1f}x")

    # The density sweep of Figure 14, in miniature: triangle counting gets
    # relatively cheaper on SpArch as the graph gets sparser.
    print("\n--- density sweep (Figure 14 in miniature) ---")
    for degree in (16.0, 8.0, 4.0):
        graph = build_undirected_graph(1500, degree, seed=7)
        _, sweep_stats = count_triangles_on_sparch(graph)
        mkl_sweep = GustavsonSpGEMM().multiply(graph, graph)
        ratio = mkl_sweep.runtime_seconds / sweep_stats.runtime_seconds
        print(f"avg degree {degree:5.1f}: density {graph.density:.2e}  "
              f"SpArch {sweep_stats.gflops:6.2f} GFLOP/s  "
              f"speedup over CPU {ratio:5.1f}x")
    print("\nSpArch's advantage persists as the matrices get sparser — the "
          "qualitative claim of Figure 14.")


if __name__ == "__main__":
    main()
