#!/usr/bin/env python3
"""Design space exploration for a custom workload.

The paper fixes its architecture with the sweeps of Figures 17/18.  A user
adopting SpArch for a *specific* workload can rerun that exploration for
their own matrices: this example sweeps the merge-tree depth and the
prefetch-buffer size for a road-network workload and prints the
performance / DRAM-traffic / area / energy trade-off of every design point,
ending with a simple efficiency-per-area recommendation.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import SpArch, SpArchConfig
from repro.analysis import AreaModel, EnergyModel
from repro.matrices import road_network_matrix
from repro.utils import Table, geometric_mean, human_bytes

#: Candidate merge-tree depths (4-way .. 128-way) and buffer sizes (lines).
TREE_LAYERS = (3, 4, 5, 6, 7)
BUFFER_LINES = (64, 128, 256)


def evaluate(config: SpArchConfig, matrices) -> dict[str, float]:
    """Simulate every matrix on ``config`` and aggregate the key metrics."""
    accelerator = SpArch(config)
    energy_model = EnergyModel()
    gflops, energies, dram = [], [], 0
    for matrix in matrices:
        result = accelerator.multiply(matrix, matrix)
        gflops.append(max(result.stats.gflops, 1e-9))
        energies.append(energy_model.total_energy(result.stats, config))
        dram += result.stats.dram_bytes
    return {
        "gflops": geometric_mean(gflops),
        "dram_bytes": float(dram),
        "energy_joules": sum(energies),
        "area_mm2": AreaModel().total_area(config),
    }


def main() -> None:
    matrices = [road_network_matrix(3000, seed=s) for s in (1, 2, 3)]
    nnz = sum(m.nnz for m in matrices)
    print(f"workload: 3 road-network matrices, {nnz} nonzeros total\n")

    table = Table(
        title="Design space exploration (road-network workload)",
        columns=["tree layers", "buffer lines", "GFLOP/s", "DRAM",
                 "energy (µJ)", "area mm²", "GFLOP/s per mm²"],
    )
    results = {}
    for layers in TREE_LAYERS:
        for lines in BUFFER_LINES:
            config = SpArchConfig().replace(merge_tree_layers=layers,
                                            prefetch_buffer_lines=lines)
            metrics = evaluate(config, matrices)
            results[(layers, lines)] = metrics
            table.add_row(layers, lines, metrics["gflops"],
                          human_bytes(metrics["dram_bytes"]),
                          metrics["energy_joules"] * 1e6,
                          metrics["area_mm2"],
                          metrics["gflops"] / metrics["area_mm2"])
    print(table.render())

    best_performance = max(results, key=lambda key: results[key]["gflops"])
    best_efficiency = max(results, key=lambda key: (results[key]["gflops"]
                                                    / results[key]["area_mm2"]))
    print(f"\nhighest throughput : {best_performance[0]} layers, "
          f"{best_performance[1]} buffer lines "
          f"({results[best_performance]['gflops']:.2f} GFLOP/s)")
    print(f"best GFLOP/s per mm²: {best_efficiency[0]} layers, "
          f"{best_efficiency[1]} buffer lines")
    print("\nThe paper's Table I point (6 layers, 1024 lines) maximises "
          "throughput on its large benchmark matrices; smaller workloads can "
          "trade merge-tree depth and buffer capacity for area, which is "
          "exactly the exploration Figures 17 and 18 perform.")


if __name__ == "__main__":
    main()
